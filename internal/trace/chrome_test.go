package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTrainTrace runs a small deterministic 2-device training job and
// returns its trace. Everything that reaches the trace (shapes, nnz,
// modelled clocks) is derived from the fixed seeds, so two builds yield
// identical traces regardless of GOMAXPROCS.
func buildTrainTrace() *trace.Tracer {
	rng := rand.New(rand.NewSource(3))
	adj, labels := graph.PlantedPartition(rng, 64, 512, 4, 0.8)
	prob := &core.Problem{A: sparse.GCNNormalize(adj), Labels: labels}
	prob.X = graph.SynthesizeFeatures(rng, labels, 4, 8, 0.8)
	tr := trace.NewTracer(0)
	core.Train(2, hw.A6000(), prob, core.Options{
		Dims:       []int{8, 16, 4},
		Config:     costmodel.ConfigFromID(0, 2),
		Memoize:    true,
		LR:         0.01,
		Seed:       11,
		Tracer:     tr,
		TraceLabel: "train-p2",
	}, 2)
	return tr
}

func chromeBytes(t *testing.T, tr *trace.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChromeGolden(t *testing.T) {
	got := chromeBytes(t, buildTrainTrace())
	golden := filepath.Join("testdata", "train_p2_chrome.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chrome export differs from golden file (len %d vs %d); rerun with -update if the change is intended",
			len(got), len(want))
	}
}

func TestChromeDeterminism(t *testing.T) {
	a := chromeBytes(t, buildTrainTrace())
	b := chromeBytes(t, buildTrainTrace())
	if !bytes.Equal(a, b) {
		t.Fatalf("two identical runs produced different traces (%d vs %d bytes)", len(a), len(b))
	}
}

func TestChromeWellFormed(t *testing.T) {
	tr := buildTrainTrace()
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(chromeBytes(t, tr), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	counts := map[string]int{}
	tids := map[int]bool{}
	for _, ev := range file.TraceEvents {
		counts[ev.Ph]++
		if ev.Ph == "X" {
			tids[ev.Tid] = true
			if ev.Pid != 1 {
				t.Fatalf("X event with pid %d, want 1 (single session)", ev.Pid)
			}
		}
	}
	if counts["M"] == 0 || counts["X"] == 0 {
		t.Fatalf("missing metadata or complete events: %v", counts)
	}
	if counts["s"] == 0 || counts["f"] == 0 {
		t.Errorf("missing comm-flow arrows: %v", counts)
	}
	if len(tids) != 2 {
		t.Errorf("expected 2 device tracks, saw tids %v", tids)
	}

	// The per-class aggregates derived from the same trace agree with the
	// device accumulators — checked here end-to-end through core.Train.
	sum := trace.Summarize(tr)
	if len(sum.Sessions) != 1 || sum.Sessions[0].Label != "train-p2" {
		t.Fatalf("summary sessions = %+v", sum.Sessions)
	}
	ss := sum.Sessions[0]
	if ss.MaxCommTime <= 0 || ss.MaxComputeTime <= 0 || ss.MaxClock <= 0 {
		t.Errorf("degenerate aggregates: %+v", ss)
	}
	for _, rt := range ss.Ranks {
		if rt.Dropped != 0 {
			t.Errorf("rank %d dropped %d events", rt.Rank, rt.Dropped)
		}
	}
}

func TestChromeNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("nil-tracer export invalid: %v", err)
	}
	if evs, ok := file["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Errorf("nil-tracer export = %v", file)
	}
}
