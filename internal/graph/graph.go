// Package graph provides the graph substrate for the GNN-RDM
// reproduction: a graph type over CSR adjacency, synthetic generators
// (R-MAT, planted-partition, Erdős–Rényi), feature/label synthesis, and
// train/val/test splits.
//
// The paper evaluates on eight public datasets (Table V). Those datasets
// are not redistributable inside this offline build, so each is replaced
// by a synthetic recipe that matches its vertex count, edge count,
// feature width and label count (optionally scaled down); see
// internal/graph/datasets.go and DESIGN.md §1.
package graph

import (
	"fmt"
	"math/rand"

	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// Graph is an undirected graph with node features and labels, ready for
// GCN training.
type Graph struct {
	Name string
	// Adj is the raw symmetric adjacency matrix (no self loops, unit
	// weights).
	Adj *sparse.CSR
	// Features is the N x FeatureDim input feature matrix (H_0).
	Features *tensor.Dense
	// Labels[i] in [0, NumClasses) is node i's class, or -1 if unlabeled.
	Labels []int32
	// NumClasses is the number of distinct labels.
	NumClasses int
	// TrainMask/ValMask/TestMask flag split membership per node. All false
	// for datasets without training splits (Web-Google, Com-Orkut).
	TrainMask, ValMask, TestMask []bool
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.Adj.Rows }

// NNZ returns the number of stored directed edges (2x undirected count).
func (g *Graph) NNZ() int64 { return g.Adj.NNZ() }

// FeatureDim returns the input feature width f_in.
func (g *Graph) FeatureDim() int { return g.Features.Cols }

// Normalized returns the GCN propagation matrix D^{-1/2}(A+I)D^{-1/2}.
func (g *Graph) Normalized() *sparse.CSR { return sparse.GCNNormalize(g.Adj) }

// HasSplits reports whether the graph carries train/val/test masks.
func (g *Graph) HasSplits() bool { return g.TrainMask != nil }

func (g *Graph) String() string {
	return fmt.Sprintf("%s: N=%d nnz=%d f=%d labels=%d", g.Name, g.N(), g.NNZ(), g.FeatureDim(), g.NumClasses)
}

// symmetrize turns an arbitrary coordinate list into a clean undirected
// edge set: both directions present, self loops removed, duplicates
// merged with value 1.
func symmetrize(n int, coords []sparse.Coord) *sparse.CSR {
	sym := make([]sparse.Coord, 0, 2*len(coords))
	for _, e := range coords {
		if e.Row == e.Col {
			continue
		}
		sym = append(sym, sparse.Coord{Row: e.Row, Col: e.Col, Val: 1})
		sym = append(sym, sparse.Coord{Row: e.Col, Col: e.Row, Val: 1})
	}
	m := sparse.FromCoords(n, n, sym)
	// Clamp merged duplicates back to unit weight.
	for i := range m.Val {
		m.Val[i] = 1
	}
	return m
}

// RMAT generates an R-MAT graph with n vertices (rounded up to a power of
// two internally, then truncated) and approximately the requested number
// of undirected edges, using the classic (a,b,c,d) quadrant recursion.
// R-MAT yields the skewed power-law-like degree distributions of the web,
// social and co-purchase graphs in Table V.
func RMAT(rng *rand.Rand, n int, edges int64, a, b, c float64) *sparse.CSR {
	if n < 2 {
		panic("graph: RMAT needs n >= 2")
	}
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	coords := make([]sparse.Coord, 0, edges)
	for int64(len(coords)) < edges {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				v |= 1 << l
			case r < a+b+c: // bottom-left
				u |= 1 << l
			default: // bottom-right
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		coords = append(coords, sparse.Coord{Row: int32(u), Col: int32(v), Val: 1})
	}
	return symmetrize(n, coords)
}

// ErdosRenyi generates a G(n, m) uniform random graph with about m
// undirected edges.
func ErdosRenyi(rng *rand.Rand, n int, m int64) *sparse.CSR {
	coords := make([]sparse.Coord, 0, m)
	for int64(len(coords)) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		coords = append(coords, sparse.Coord{Row: int32(u), Col: int32(v), Val: 1})
	}
	return symmetrize(n, coords)
}

// PlantedPartition generates a stochastic-block-model graph: n vertices in
// k equal communities, with a fraction pIn of edges internal to a
// community. Returns the adjacency and the community assignment. Planted
// structure makes GCN training convergent, which the accuracy-vs-time
// experiment (Fig. 13) requires.
func PlantedPartition(rng *rand.Rand, n int, edges int64, k int, pIn float64) (*sparse.CSR, []int32) {
	if k < 1 || n < k {
		panic("graph: PlantedPartition needs 1 <= k <= n")
	}
	comm := make([]int32, n)
	for i := range comm {
		comm[i] = int32(i % k)
	}
	// Vertices of community c are {i : i % k == c}; sampling within a
	// community picks a random multiple offset.
	coords := make([]sparse.Coord, 0, edges)
	perComm := n / k
	for int64(len(coords)) < edges {
		u := rng.Intn(n)
		var v int
		if rng.Float64() < pIn && perComm > 1 {
			v = rng.Intn(perComm)*k + int(comm[u])
			if v >= n {
				continue
			}
		} else {
			v = rng.Intn(n)
		}
		if u == v {
			continue
		}
		coords = append(coords, sparse.Coord{Row: int32(u), Col: int32(v), Val: 1})
	}
	return symmetrize(n, coords), comm
}

// SynthesizeFeatures builds an n x f feature matrix where each node's
// features are a noisy copy of its community centroid (signal strength in
// [0,1]; 0 = pure noise). Community centroids are random unit-ish vectors.
func SynthesizeFeatures(rng *rand.Rand, comm []int32, k, f int, signal float64) *tensor.Dense {
	centroids := tensor.NewDense(k, f)
	centroids.Randomize(rng, 1)
	out := tensor.NewDense(len(comm), f)
	for i, c := range comm {
		row := out.Row(i)
		cen := centroids.Row(int(c))
		for j := range row {
			row[j] = float32(signal)*cen[j] + float32(1-signal)*float32(rng.NormFloat64()*0.5)
		}
	}
	return out
}

// RandomSplit assigns nodes to train/val/test with the given fractions
// (remainder goes to test).
func RandomSplit(rng *rand.Rand, n int, trainFrac, valFrac float64) (train, val, test []bool) {
	train = make([]bool, n)
	val = make([]bool, n)
	test = make([]bool, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < trainFrac:
			train[i] = true
		case r < trainFrac+valFrac:
			val[i] = true
		default:
			test[i] = true
		}
	}
	return train, val, test
}
