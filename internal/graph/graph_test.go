package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gnnrdm/internal/sparse"
)

func TestRMATShapeAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj := RMAT(rng, 1000, 5000, 0.57, 0.19, 0.19)
	if adj.Rows != 1000 || adj.Cols != 1000 {
		t.Fatalf("shape %dx%d", adj.Rows, adj.Cols)
	}
	if adj.NNZ() < 5000 || adj.NNZ() > 10000 {
		t.Fatalf("nnz=%d outside [5000,10000]", adj.NNZ())
	}
	checkSymmetricNoSelfLoops(t, adj)
}

func TestRMATSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	adj := RMAT(rng, 4096, 40000, 0.57, 0.19, 0.19)
	d := SortedDegrees(adj)
	// Skewed generator: max degree far above mean.
	mean := float64(adj.NNZ()) / float64(adj.Rows)
	if float64(d[0]) < 5*mean {
		t.Fatalf("R-MAT not skewed: max=%d mean=%.1f", d[0], mean)
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj := ErdosRenyi(rng, 500, 2000)
	checkSymmetricNoSelfLoops(t, adj)
	if adj.NNZ() < 2000 {
		t.Fatalf("nnz=%d", adj.NNZ())
	}
}

func TestPlantedPartitionCommunityBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	adj, comm := PlantedPartition(rng, 2000, 20000, 10, 0.8)
	checkSymmetricNoSelfLoops(t, adj)
	internal, total := 0, 0
	for i := 0; i < adj.Rows; i++ {
		for p := adj.RowPtr[i]; p < adj.RowPtr[i+1]; p++ {
			total++
			if comm[i] == comm[adj.ColIdx[p]] {
				internal++
			}
		}
	}
	frac := float64(internal) / float64(total)
	// pIn=0.8 of endpoints targeted internal; with 10 communities the
	// random remainder adds ~0.02. Must be far above the 0.1 random rate.
	if frac < 0.5 {
		t.Fatalf("internal fraction %.3f too low for planted structure", frac)
	}
}

func TestSynthesizeFeaturesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	comm := []int32{0, 0, 1, 1}
	f := SynthesizeFeatures(rng, comm, 2, 32, 1.0) // pure signal
	// Same community -> identical features at signal=1.
	for j := 0; j < 32; j++ {
		if f.At(0, j) != f.At(1, j) {
			t.Fatal("signal=1 must give identical same-community features")
		}
	}
	// Different communities -> different centroids (w.h.p.).
	same := true
	for j := 0; j < 32; j++ {
		if f.At(0, j) != f.At(2, j) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different communities should differ")
	}
}

func TestRandomSplitPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr, va, te := RandomSplit(rng, 10000, 0.6, 0.2)
	nTr, nVa, nTe := 0, 0, 0
	for i := 0; i < 10000; i++ {
		c := 0
		if tr[i] {
			c++
			nTr++
		}
		if va[i] {
			c++
			nVa++
		}
		if te[i] {
			c++
			nTe++
		}
		if c != 1 {
			t.Fatalf("node %d in %d splits", i, c)
		}
	}
	if nTr < 5500 || nTr > 6500 || nVa < 1500 || nVa > 2500 {
		t.Fatalf("split sizes off: %d/%d/%d", nTr, nVa, nTe)
	}
}

func TestRecipesMatchTableV(t *testing.T) {
	want := map[string][4]int64{
		"OGB-Arxiv":    {169_343, 1_166_243, 128, 40},
		"OGB-MAG":      {1_939_743, 21_111_007, 128, 349},
		"OGB-Products": {2_449_029, 61_859_140, 100, 47},
		"Reddit":       {232_965, 114_848_857, 602, 41},
		"Web-Google":   {875_713, 5_105_039, 256, 100},
		"Com-Orkut":    {3_072_441, 117_185_083, 128, 100},
		"CAMI-Airways": {1_000_000, 22_901_745, 256, 25},
		"CAMI-Oral":    {1_000_000, 20_734_972, 256, 32},
	}
	rs := Recipes()
	if len(rs) != 8 {
		t.Fatalf("want 8 recipes, got %d", len(rs))
	}
	for _, r := range rs {
		w, ok := want[r.Name]
		if !ok {
			t.Fatalf("unexpected recipe %q", r.Name)
		}
		if int64(r.Vertices) != w[0] || r.Edges != w[1] || int64(r.FeatureDim) != w[2] || int64(r.Labels) != w[3] {
			t.Fatalf("%s: got (%d,%d,%d,%d) want %v", r.Name, r.Vertices, r.Edges, r.FeatureDim, r.Labels, w)
		}
	}
}

func TestRecipeByName(t *testing.T) {
	r, err := RecipeByName("Reddit")
	if err != nil || r.FeatureDim != 602 {
		t.Fatalf("RecipeByName: %v %v", r, err)
	}
	if _, err := RecipeByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestScaledRecipe(t *testing.T) {
	r, _ := RecipeByName("OGB-Arxiv")
	s := r.Scaled(16)
	if s.Vertices != r.Vertices/16 || s.Edges != r.Edges/16 {
		t.Fatalf("scaled: %d %d", s.Vertices, s.Edges)
	}
	if s.FeatureDim != r.FeatureDim || s.Labels != r.Labels {
		t.Fatal("scaling must not change feature/label dims")
	}
	if r.Scaled(1).Vertices != r.Vertices {
		t.Fatal("scale=1 must be identity")
	}
	tiny := r.Scaled(1 << 30)
	if tiny.Vertices < 64 || tiny.Edges < int64(tiny.Vertices) {
		t.Fatal("scaling floor violated")
	}
}

func TestBuildScaledGraph(t *testing.T) {
	r, _ := RecipeByName("OGB-Arxiv")
	g := r.Scaled(64).Build()
	if g.N() != r.Vertices/64 {
		t.Fatalf("N=%d", g.N())
	}
	if g.FeatureDim() != 128 || g.NumClasses != 40 {
		t.Fatal("dims wrong")
	}
	if !g.HasSplits() {
		t.Fatal("arxiv recipe must have splits")
	}
	if len(g.Labels) != g.N() {
		t.Fatal("labels length")
	}
	checkSymmetricNoSelfLoops(t, g.Adj)
	norm := g.Normalized()
	if norm.NNZ() < g.Adj.NNZ() { // adds self loops
		t.Fatal("normalization should add self loops")
	}
}

func TestBuildUnlabelledGraph(t *testing.T) {
	r, _ := RecipeByName("Web-Google")
	g := r.Scaled(256).Build()
	if g.HasSplits() {
		t.Fatal("web-google must not have splits")
	}
	if g.NumClasses != 100 || g.FeatureDim() != 256 {
		t.Fatal("dims wrong")
	}
}

func TestBuildDeterministic(t *testing.T) {
	r, _ := RecipeByName("OGB-Arxiv")
	g1 := r.Scaled(128).Build()
	g2 := r.Scaled(128).Build()
	if g1.NNZ() != g2.NNZ() {
		t.Fatal("same seed must give same graph")
	}
	for i := range g1.Features.Data[:100] {
		if g1.Features.Data[i] != g2.Features.Data[i] {
			t.Fatal("same seed must give same features")
		}
	}
}

// Property: every generator output is symmetric with no self loops.
func TestGeneratorsSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		adj := RMAT(rng, n, int64(3*n), 0.5, 0.2, 0.2)
		adj2, _ := PlantedPartition(rng, n, int64(3*n), 4, 0.7)
		return isSymmetricNoSelfLoops(adj) && isSymmetricNoSelfLoops(adj2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func isSymmetricNoSelfLoops(adj *sparse.CSR) bool {
	for i := 0; i < adj.Rows; i++ {
		for p := adj.RowPtr[i]; p < adj.RowPtr[i+1]; p++ {
			j := int(adj.ColIdx[p])
			if j == i {
				return false
			}
			if adj.At(j, i) != adj.Val[p] {
				return false
			}
		}
	}
	return true
}

func checkSymmetricNoSelfLoops(t *testing.T, adj *sparse.CSR) {
	t.Helper()
	if !isSymmetricNoSelfLoops(adj) {
		t.Fatal("adjacency must be symmetric with no self loops")
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
