package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment
0 1
1 2
% another comment
2 0
3 3
0 1
`
	adj, err := ReadEdgeList(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle 0-1-2, self loop dropped, duplicate merged: nnz = 6.
	if adj.NNZ() != 6 {
		t.Fatalf("nnz=%d want 6", adj.NNZ())
	}
	if adj.At(0, 1) != 1 || adj.At(1, 0) != 1 || adj.At(3, 3) != 0 {
		t.Fatal("bad entries")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"short line":   "0\n",
		"bad vertex":   "x 1\n",
		"bad second":   "1 y\n",
		"out of range": "0 9\n",
		"negative":     "-1 0\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 4); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, _ := PlantedPartition(rng, 50, 200, 4, 0.7)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, adj); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 50)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != adj.NNZ() {
		t.Fatalf("nnz %d != %d", back.NNZ(), adj.NNZ())
	}
	if tensor.MaxAbsDiff(back.ToDense(), adj.ToDense()) != 0 {
		t.Fatal("edge list round trip corrupted adjacency")
	}
}

func TestCSRBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	adj, _ := PlantedPartition(rng, 64, 400, 4, 0.7)
	norm := sparse.GCNNormalize(adj)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, norm); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != norm.Rows || back.NNZ() != norm.NNZ() {
		t.Fatal("shape corrupted")
	}
	if tensor.MaxAbsDiff(back.ToDense(), norm.ToDense()) != 0 {
		t.Fatal("values corrupted")
	}
}

func TestReadCSRRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj, _ := PlantedPartition(rng, 20, 80, 2, 0.7)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, adj); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated.
	if _, err := ReadCSR(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Column index out of range: corrupt a colidx byte region. The colidx
	// area begins after the 4x8-byte header + (rows+1)*8 rowptr bytes.
	off := 32 + (20+1)*8
	bad = append([]byte(nil), good...)
	bad[off] = 0xFF
	bad[off+1] = 0xFF
	bad[off+2] = 0xFF
	bad[off+3] = 0x7F
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestReadLabels(t *testing.T) {
	labels, err := ReadLabels(strings.NewReader("1\n# c\n0\n-1\n2\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 1 || labels[2] != -1 || labels[3] != 2 {
		t.Fatalf("labels=%v", labels)
	}
	if _, err := ReadLabels(strings.NewReader("1\n2\n"), 4); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ReadLabels(strings.NewReader("x\n"), 1); err == nil {
		t.Fatal("bad label accepted")
	}
}
