package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the parser never panics and that anything it
// accepts is a valid symmetric loop-free adjacency.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", 8)
	f.Add("# c\n3 3\n0 7\n", 8)
	f.Add("", 1)
	f.Add("0 1 0.5\n", 4)
	f.Fuzz(func(t *testing.T, in string, n int) {
		if n < 1 || n > 256 {
			return
		}
		adj, err := ReadEdgeList(strings.NewReader(in), n)
		if err != nil {
			return
		}
		if adj.Rows != n || adj.Cols != n {
			t.Fatalf("bad shape %dx%d", adj.Rows, adj.Cols)
		}
		for i := 0; i < n; i++ {
			for p := adj.RowPtr[i]; p < adj.RowPtr[i+1]; p++ {
				j := int(adj.ColIdx[p])
				if j == i {
					t.Fatal("self loop survived")
				}
				if adj.At(j, i) != adj.Val[p] {
					t.Fatal("asymmetric output")
				}
			}
		}
	})
}

// FuzzReadCSR checks the binary reader rejects or safely parses
// arbitrary input without panicking or over-allocating.
func FuzzReadCSR(f *testing.F) {
	var seed bytes.Buffer
	adj, _ := PlantedPartition(newRand(1), 16, 48, 2, 0.7)
	_ = WriteCSR(&seed, adj)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x52, 0x53, 0x43, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted matrices must satisfy CSR invariants.
		if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != m.NNZ() {
			t.Fatal("invalid row pointers accepted")
		}
		for _, c := range m.ColIdx {
			if c < 0 || int(c) >= m.Cols {
				t.Fatal("invalid column accepted")
			}
		}
	})
}
