package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Recipe describes a synthetic stand-in for one of the paper's evaluation
// datasets (Table V). Vertices/Edges/FeatureDim/Labels match the paper;
// Kind and Signal control the generator so that labelled datasets are
// actually learnable.
type Recipe struct {
	Name       string
	Vertices   int
	Edges      int64 // undirected edge count as reported in Table V
	FeatureDim int
	Labels     int
	// Kind selects the generator: "rmat" (skewed web/social graphs),
	// "planted" (community structure; labelled datasets), "overlap"
	// (metagenomic overlap graphs: planted partition with high internal
	// fraction and weaker feature signal).
	Kind string
	// Signal is the community-feature correlation in [0,1].
	Signal float64
	// HasSplits mirrors the paper: Web-Google and Com-Orkut carry no
	// training data (random features/labels, runtime-only evaluation).
	HasSplits bool
	Seed      int64
}

// Recipes returns the eight Table V dataset recipes, in the paper's order.
func Recipes() []Recipe {
	return []Recipe{
		{Name: "OGB-Arxiv", Vertices: 169_343, Edges: 1_166_243, FeatureDim: 128, Labels: 40, Kind: "planted", Signal: 0.8, HasSplits: true, Seed: 101},
		{Name: "OGB-MAG", Vertices: 1_939_743, Edges: 21_111_007, FeatureDim: 128, Labels: 349, Kind: "planted", Signal: 0.8, HasSplits: true, Seed: 102},
		{Name: "OGB-Products", Vertices: 2_449_029, Edges: 61_859_140, FeatureDim: 100, Labels: 47, Kind: "planted", Signal: 0.8, HasSplits: true, Seed: 103},
		{Name: "Reddit", Vertices: 232_965, Edges: 114_848_857, FeatureDim: 602, Labels: 41, Kind: "planted", Signal: 0.8, HasSplits: true, Seed: 104},
		{Name: "Web-Google", Vertices: 875_713, Edges: 5_105_039, FeatureDim: 256, Labels: 100, Kind: "rmat", Signal: 0, HasSplits: false, Seed: 105},
		{Name: "Com-Orkut", Vertices: 3_072_441, Edges: 117_185_083, FeatureDim: 128, Labels: 100, Kind: "rmat", Signal: 0, HasSplits: false, Seed: 106},
		{Name: "CAMI-Airways", Vertices: 1_000_000, Edges: 22_901_745, FeatureDim: 256, Labels: 25, Kind: "overlap", Signal: 0.5, HasSplits: true, Seed: 107},
		{Name: "CAMI-Oral", Vertices: 1_000_000, Edges: 20_734_972, FeatureDim: 256, Labels: 32, Kind: "overlap", Signal: 0.5, HasSplits: true, Seed: 108},
	}
}

// RecipeByName looks a recipe up by its Table V name.
func RecipeByName(name string) (Recipe, error) {
	for _, r := range Recipes() {
		if r.Name == name {
			return r, nil
		}
	}
	return Recipe{}, fmt.Errorf("graph: unknown dataset recipe %q", name)
}

// Scaled returns a copy of r with vertex and edge counts divided by the
// scale factor (>= 1). Feature and label dimensions are preserved, since
// the cost model depends on them directly.
func (r Recipe) Scaled(scale int) Recipe {
	if scale <= 1 {
		return r
	}
	out := r
	out.Vertices = maxInt(r.Vertices/scale, 64)
	out.Edges = maxInt64(r.Edges/int64(scale), int64(out.Vertices))
	return out
}

// Build materializes the recipe into a Graph. The undirected Edges count
// is the target for generated undirected edges; the resulting CSR stores
// both directions (nnz ≈ 2 × Edges, matching how adjacency SpMM operates
// on symmetric graphs; Table V counts directed entries for some datasets,
// a discrepancy that does not affect any modelled quantity's shape).
func (r Recipe) Build() *Graph {
	rng := rand.New(rand.NewSource(r.Seed))
	g := &Graph{Name: r.Name, NumClasses: r.Labels}
	var comm []int32
	switch r.Kind {
	case "rmat":
		g.Adj = RMAT(rng, r.Vertices, r.Edges, 0.57, 0.19, 0.19)
	case "planted":
		g.Adj, comm = PlantedPartition(rng, r.Vertices, r.Edges, r.Labels, 0.7)
	case "overlap":
		// Metagenomic overlap graphs: long chains of overlapping reads per
		// genome cluster; high internal fraction, lower feature signal
		// (tetranucleotide frequencies are weak features).
		g.Adj, comm = PlantedPartition(rng, r.Vertices, r.Edges, r.Labels, 0.9)
	default:
		panic("graph: unknown recipe kind " + r.Kind)
	}
	if comm == nil {
		// Unlabelled datasets get random labels/features (runtime
		// evaluation only), mirroring the paper's treatment of Web-Google
		// and Com-Orkut.
		comm = make([]int32, r.Vertices)
		for i := range comm {
			comm[i] = int32(rng.Intn(r.Labels))
		}
	}
	g.Labels = comm
	g.Features = SynthesizeFeatures(rng, comm, r.Labels, r.FeatureDim, r.Signal)
	if r.HasSplits {
		g.TrainMask, g.ValMask, g.TestMask = RandomSplit(rng, r.Vertices, 0.6, 0.2)
	}
	return g
}

// Names returns the recipe names in the paper's order.
func Names() []string {
	rs := Recipes()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

// SortedDegrees returns the degree sequence sorted descending (used by
// tests to sanity-check generator skew).
func SortedDegrees(adj interface{ RowDegrees() []int64 }) []int64 {
	d := adj.RowDegrees()
	sort.Slice(d, func(i, j int) bool { return d[i] > d[j] })
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
