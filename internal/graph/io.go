package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gnnrdm/internal/sparse"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line,
// optionally "u v w"; '#' and '%' lines are comments) into a symmetric
// unit-weight adjacency matrix over n vertices. Vertex IDs must lie in
// [0, n); self loops and duplicate edges are dropped/merged. This is the
// SNAP/OGB-style interchange format, so users can run the system on real
// datasets.
func ReadEdgeList(r io.Reader, n int) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var coords []sparse.Coord
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q", line, fields[1])
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: line %d: vertex out of range [0,%d)", line, n)
		}
		if u == v {
			continue
		}
		coords = append(coords,
			sparse.Coord{Row: int32(u), Col: int32(v), Val: 1},
			sparse.Coord{Row: int32(v), Col: int32(u), Val: 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	adj := sparse.FromCoords(n, n, coords)
	for i := range adj.Val {
		adj.Val[i] = 1 // merged duplicates back to unit weight
	}
	return adj, nil
}

// WriteEdgeList writes the upper triangle of a symmetric adjacency as
// "u v" lines.
func WriteEdgeList(w io.Writer, adj *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < adj.Rows; i++ {
		for p := adj.RowPtr[i]; p < adj.RowPtr[i+1]; p++ {
			j := int(adj.ColIdx[p])
			if j > i {
				if _, err := fmt.Fprintf(bw, "%d %d\n", i, j); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// csrMagic identifies the binary CSR format.
const csrMagic = 0x43535231 // "CSR1"

// WriteCSR serializes a CSR in a compact little-endian binary format:
// magic, rows, cols, nnz (uint64), then rowptr (int64), colidx (int32),
// vals (float32 bits).
func WriteCSR(w io.Writer, m *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{csrMagic, uint64(m.Rows), uint64(m.Cols), uint64(m.NNZ())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSR deserializes a CSR written by WriteCSR.
func ReadCSR(r io.Reader) (*sparse.CSR, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading CSR header: %w", err)
		}
	}
	if hdr[0] != csrMagic {
		return nil, fmt.Errorf("graph: bad CSR magic %#x", hdr[0])
	}
	const maxDim = 1 << 33
	if hdr[1] > maxDim || hdr[2] > maxDim || hdr[3] > maxDim*8 {
		return nil, fmt.Errorf("graph: implausible CSR dimensions %v", hdr[1:])
	}
	// Read index/value arrays in bounded chunks so a hostile header
	// cannot force a huge allocation before the stream proves it
	// actually carries that much data.
	rowPtr, err := readChunkedInt64(br, hdr[1]+1)
	if err != nil {
		return nil, err
	}
	colIdx, err := readChunkedInt32(br, hdr[3])
	if err != nil {
		return nil, err
	}
	vals, err := readChunkedFloat32(br, hdr[3])
	if err != nil {
		return nil, err
	}
	m := &sparse.CSR{
		Rows: int(hdr[1]), Cols: int(hdr[2]),
		RowPtr: rowPtr, ColIdx: colIdx, Val: vals,
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != int64(hdr[3]) {
		return nil, fmt.Errorf("graph: corrupt CSR row pointers")
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return nil, fmt.Errorf("graph: non-monotone CSR row pointers at %d", i)
		}
	}
	for _, c := range m.ColIdx {
		if c < 0 || int(c) >= m.Cols {
			return nil, fmt.Errorf("graph: CSR column %d out of range", c)
		}
	}
	return m, nil
}

// ReadLabels parses one integer label per line (-1 = unlabeled).
func ReadLabels(r io.Reader, n int) ([]int32, error) {
	sc := bufio.NewScanner(r)
	labels := make([]int32, 0, n)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("graph: bad label %q", text)
		}
		labels = append(labels, int32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(labels) != n {
		return nil, fmt.Errorf("graph: %d labels for %d vertices", len(labels), n)
	}
	return labels, nil
}

// chunkElems bounds per-read allocations while streaming array sections.
const chunkElems = 1 << 16

func readChunkedInt64(r io.Reader, n uint64) ([]int64, error) {
	out := make([]int64, 0, minU64(n, chunkElems))
	for uint64(len(out)) < n {
		c := minU64(n-uint64(len(out)), chunkElems)
		buf := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, &buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func readChunkedInt32(r io.Reader, n uint64) ([]int32, error) {
	out := make([]int32, 0, minU64(n, chunkElems))
	for uint64(len(out)) < n {
		c := minU64(n-uint64(len(out)), chunkElems)
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, &buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func readChunkedFloat32(r io.Reader, n uint64) ([]float32, error) {
	out := make([]float32, 0, minU64(n, chunkElems))
	for uint64(len(out)) < n {
		c := minU64(n-uint64(len(out)), chunkElems)
		buf := make([]float32, c)
		if err := binary.Read(r, binary.LittleEndian, &buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
