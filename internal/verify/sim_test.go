package verify

import (
	"bytes"
	"fmt"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/member"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// TestSimMatchesFabricSweep is the discrete-event backend's acceptance
// sweep: all 16 Table IV orderings × P ∈ {1,2,4,8} × {flat,
// 8x4:nvlink,ib}, each replayed on the sim engine and pinned
// bit-identical to live fabric runs — clocks, comm/compute time
// accumulators, and the full meter matrix — for both executors.
func TestSimMatchesFabricSweep(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	dims := []int{16, 12, 8}
	for _, spec := range []string{"", "8x4:nvlink,ib"} {
		var ts topo.Spec
		if spec != "" {
			var err error
			if ts, err = topo.ParseSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
		for cfg := 0; cfg < costmodel.NumConfigs(len(dims)-1); cfg++ {
			for _, p := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("flat/cfg%02d/P%d", cfg, p)
				if spec != "" {
					name = fmt.Sprintf("%s/cfg%02d/P%d", spec, cfg, p)
				}
				cfg, p := cfg, p
				t.Run(name, func(t *testing.T) {
					o := DiffSpec{Dims: dims}.opts(cfg)
					if spec != "" {
						o.Topology = ts.MustTopology(p)
					}
					CheckSimMatchesFabric(t, prob, p, 2, o)
				})
			}
		}
	}
}

// TestSimMatchesFabricSAGE extends the pin to the two-weight GraphSAGE
// form with reduced adjacency replication, which exercises the
// column-group allgather rounds and the side-channel (packed mask)
// regrid accounting.
func TestSimMatchesFabricSAGE(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	o := DiffSpec{Dims: []int{16, 12, 8}}.opts(5)
	o.SAGE = true
	o.RA = 2
	CheckSimMatchesFabric(t, prob, 4, 2, o)
}

// TestSimMatchesFabricRecovered pins the sim backend on the worlds
// elastic recovery actually produces: a crash shrinks P=4 to the odd
// world P'=3 (a shape the power-of-two sweep never visits), once
// detected by the fault injector directly and once by the gossip
// membership layer on a hierarchical topology. The sim must reproduce
// the recovered world's live fabric bit-for-bit in both cases.
func TestSimMatchesFabricRecovered(t *testing.T) {
	prob := DefaultProblem(3, 64, 12, 4)
	dims := []int{12, 10, 4}
	sched, err := fault.ParseSchedule("crash@rank1:epoch1")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("elastic", func(t *testing.T) {
		o := DiffSpec{Dims: dims}.opts(0)
		var el *core.ElasticResult
		NoGoroutineLeak(t, func() {
			el = core.TrainElastic(4, hw.A6000(), prob, o, 3,
				core.ElasticOptions{Schedule: sched, FaultSeed: 1})
		})
		if el.FinalP != 3 {
			t.Fatalf("recovered world P'=%d, want 3 (%+v)", el.FinalP, el.Recoveries)
		}
		CheckSimMatchesFabric(t, prob, el.FinalP, 2, o)
	})

	t.Run("gossip", func(t *testing.T) {
		sp, err := topo.ParseSpec("2x2:nvlink,ib")
		if err != nil {
			t.Fatal(err)
		}
		o := DiffSpec{Dims: dims}.opts(3)
		o.Topology = sp.MustTopology(4)
		var el *core.ElasticResult
		NoGoroutineLeak(t, func() {
			el = core.TrainElastic(4, hw.A6000(), prob, o, 3, core.ElasticOptions{
				Schedule: sched, FaultSeed: 1, Membership: &member.Config{Seed: 1},
			})
		})
		if el.FinalP != 3 {
			t.Fatalf("recovered world P'=%d, want 3 (%+v)", el.FinalP, el.Recoveries)
		}
		if len(el.Recoveries) != 1 || el.Recoveries[0].Detection == nil {
			t.Fatalf("want one gossip-detected recovery, got %+v", el.Recoveries)
		}
		// The original 2x2 topology stays attached to the shrunken world
		// (survivors renumber contiguously), exactly as TrainElastic does.
		CheckSimMatchesFabric(t, prob, el.FinalP, 2, o)
	})
}

// TestSimTraceDeterminism replays the same traced simulation twice and
// asserts byte-identical Chrome exports, and that the recorded session
// is marked virtual. The whole sim lifecycle must also leak no
// goroutines (the engine is purely sequential — this pins it).
func TestSimTraceDeterminism(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	o := DiffSpec{Dims: []int{16, 12, 8}}.opts(10)
	sched := scheduleFor(prob, 4, o)
	dag := plan.MustBuildDAG(sched)
	cen := core.PanelCensus(prob, 4, 4)
	run := func(overlap bool) []byte {
		tr := trace.NewTracer(1 << 16)
		NoGoroutineLeak(t, func() {
			sim.MustRun(sim.Config{
				DAG: dag, Census: cen, HW: hw.A6000(),
				Epochs: 2, Overlap: overlap, EpochBarriers: 2, Tracer: tr,
			})
		})
		sessions := tr.Sessions()
		if len(sessions) != 1 {
			t.Fatalf("want one trace session, got %d", len(sessions))
		}
		if !sessions[0].Virtual {
			t.Fatal("sim session not marked virtual")
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, overlap := range []bool{false, true} {
		a, b := run(overlap), run(overlap)
		if len(a) == 0 {
			t.Fatal("empty trace export")
		}
		if !bytes.Equal(a, b) {
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			t.Fatalf("overlap=%v: identical sim runs produced different traces (%d vs %d bytes, divergence at %d: %s)",
				overlap, len(a), len(b), i, contextAround(a, b, i))
		}
	}
}

// TestExecutorSeam drives both named executors through the core
// Executor interface and asserts the sim backend's Result carries
// bit-identical per-epoch timing and traffic to the fabric's, for both
// executor modes — the seam contract rdmbench relies on when swapping
// engines by name.
func TestExecutorSeam(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	if _, err := core.ExecutorFor("nope"); err == nil {
		t.Fatal("unknown engine name accepted")
	}
	fabric, err := core.ExecutorFor("")
	if err != nil || fabric.Name() != "fabric" {
		t.Fatalf("default executor: %v, %v", fabric, err)
	}
	simx, err := core.ExecutorFor("sim")
	if err != nil || simx.Name() != "sim" {
		t.Fatalf("sim executor: %v, %v", simx, err)
	}
	for _, overlap := range []bool{false, true} {
		o := DiffSpec{Dims: []int{16, 12, 8}}.opts(9)
		o.Overlap = overlap
		o.PinExecutor = true
		const p, epochs = 4, 3
		live := fabric.Train(p, hw.A6000(), prob, o, epochs)
		fast := simx.Train(p, hw.A6000(), prob, o, epochs)
		if len(fast.Epochs) != len(live.Epochs) {
			t.Fatalf("epoch count %d != %d", len(fast.Epochs), len(live.Epochs))
		}
		for ep := range live.Epochs {
			lv, sv := live.Epochs[ep], fast.Epochs[ep]
			if sv.Time != lv.Time || sv.CommTime != lv.CommTime || sv.ComputeTime != lv.ComputeTime {
				t.Fatalf("overlap=%v epoch %d: sim (%.17g, %.17g, %.17g) != fabric (%.17g, %.17g, %.17g)",
					overlap, ep, sv.Time, sv.CommTime, sv.ComputeTime, lv.Time, lv.CommTime, lv.ComputeTime)
			}
			if sv.CommBytes != lv.CommBytes {
				t.Fatalf("overlap=%v epoch %d: sim %d bytes != fabric %d", overlap, ep, sv.CommBytes, lv.CommBytes)
			}
		}
		if fast.MeanEpochTime() != live.MeanEpochTime() {
			t.Fatalf("overlap=%v: mean epoch time %v != %v", overlap, fast.MeanEpochTime(), live.MeanEpochTime())
		}
	}
}

// TestSimEpochStatsMatchTrain pins the sim's TrainResumable protocol
// (EpochBarriers=2 with post-first-barrier snapshots) against
// core.Train's per-epoch stats: epoch wall time, comm time, compute
// time (each the max over ranks of per-epoch deltas), and metered
// bytes must be bit-identical.
func TestSimEpochStatsMatchTrain(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	for _, overlap := range []bool{false, true} {
		o := DiffSpec{Dims: []int{16, 12, 8}}.opts(7)
		o.Overlap = overlap
		o.PinExecutor = true
		const p, epochs = 4, 3
		res := core.Train(p, hw.A6000(), prob, o, epochs)

		sched := scheduleFor(prob, p, o)
		dag := plan.MustBuildDAG(sched)
		cen := core.PanelCensus(prob, p, p)
		sr := sim.MustRun(sim.Config{
			DAG: dag, Census: cen, HW: hw.A6000(),
			Epochs: epochs, Overlap: overlap, EpochBarriers: 2,
		})
		prevT := make([]float64, p)
		prevC := make([]float64, p)
		prevK := make([]float64, p)
		var prevB int64
		for ep := 0; ep < epochs; ep++ {
			var wt, wc, wk float64
			for r := 0; r < p; r++ {
				wt = max(wt, sr.EpochClock[ep][r]-prevT[r])
				wc = max(wc, sr.EpochComm[ep][r]-prevC[r])
				wk = max(wk, sr.EpochCompute[ep][r]-prevK[r])
			}
			st := res.Epochs[ep]
			if wt != st.Time || wc != st.CommTime || wk != st.ComputeTime {
				t.Fatalf("overlap=%v epoch %d: sim stats (%.17g, %.17g, %.17g) != live (%.17g, %.17g, %.17g)",
					overlap, ep, wt, wc, wk, st.Time, st.CommTime, st.ComputeTime)
			}
			if db := sr.EpochBytes[ep] - prevB; db != st.CommBytes {
				t.Fatalf("overlap=%v epoch %d: sim %d bytes != live %d", overlap, ep, db, st.CommBytes)
			}
			copy(prevT, sr.EpochClock[ep])
			copy(prevC, sr.EpochComm[ep])
			copy(prevK, sr.EpochCompute[ep])
			prevB = sr.EpochBytes[ep]
		}
	}
}
