package verify

import (
	"fmt"
	"testing"
	"time"
)

// NoDeadlock runs fn and fails the test if it has not returned within
// timeout. Use it to wrap fabric runs that exercise error paths: a bug
// that turns an error into a missed rendezvous would otherwise hang the
// whole test binary until the package timeout.
//
// This is a wall-clock backstop for tests only. On the production path
// the fabric itself prevents rendezvous hangs: every collective carries
// a simulated-time deadline (comm.DefaultCollectiveDeadline, overridable
// via Fabric.SetCollectiveDeadline), so a dead peer surfaces as a typed
// *comm.FaultError on all survivors instead of a deadlock — the
// mechanism elastic recovery (core.TrainElastic) is built on.
//
// On timeout the worker goroutine is leaked (there is no way to cancel a
// goroutine parked on a rendezvous), so a failing test may report
// goroutine-leak noise after the genuine failure. A panic inside fn is
// reported as a test failure rather than crashing the binary.
func NoDeadlock(t testing.TB, timeout time.Duration, fn func()) {
	t.Helper()
	if err := noDeadlock(timeout, fn); err != nil {
		t.Fatal(err)
	}
}

func noDeadlock(timeout time.Duration, fn func()) error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- fmt.Errorf("verify: panic inside guarded function: %v", r)
			}
		}()
		fn()
		done <- nil
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("verify: guarded function did not return within %v — likely collective deadlock (worker goroutine leaked)", timeout)
	}
}
