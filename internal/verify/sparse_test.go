package verify

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"gnnrdm/internal/costmodel"
)

// TestSparseMatchesModel is the sparsity-aware exchange's acceptance
// sweep: every Table IV ordering × fabric size, flat and hierarchical,
// asserting the fabric's meters equal the planner's prices equal the
// closed forms (flat), and that the discrete-event engine replays both
// executors bit-identically (clocks, accumulators, full meter matrix).
func TestSparseMatchesModel(t *testing.T) {
	const n, fin, classes = 64, 12, 5
	const liveCount, sseed = 16, 3
	dims := []int{fin, 8, classes}
	prob := SparseProblem(11, n, fin, classes, liveCount, sseed)
	for _, tspec := range []string{"", "8x4:nvlink,ib"} {
		label := "flat"
		if tspec != "" {
			label = tspec
		}
		for cfg := 0; cfg < costmodel.NumConfigs(len(dims)-1); cfg++ {
			for _, p := range []int{1, 2, 4, 8} {
				cfg, p, tspec := cfg, p, tspec
				t.Run(fmt.Sprintf("%s/cfg%02d/P%d", label, cfg, p), func(t *testing.T) {
					CheckSparseMatchesModel(t, prob, dims, p, p, cfg, liveCount, sseed, tspec)
				})
			}
		}
	}
}

// TestSparseDensitySweep re-runs the meter-equals-model check at the
// density selected by the SPARSE_DENSITY environment variable — the CI
// sparse job's matrix axis — defaulting to 0.25 locally. The live count
// derives from the same costmodel.LiveCount the CLIs use, so this leg
// exercises the exact schedules `rdminfo -plan -density` and
// `rdmtrain -density` compile.
func TestSparseDensitySweep(t *testing.T) {
	d := 0.25
	if s := os.Getenv("SPARSE_DENSITY"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v <= 0 || v >= 1 {
			t.Fatalf("bad SPARSE_DENSITY %q: %v", s, err)
		}
		d = v
	}
	const n, fin, classes = 64, 12, 5
	const sseed = 3
	live := costmodel.LiveCount(n, d)
	dims := []int{fin, 8, classes}
	prob := SparseProblem(11, n, fin, classes, live, sseed)
	for _, cfg := range []int{3, 5, 10} {
		for _, p := range []int{2, 8} {
			cfg, p := cfg, p
			t.Run(fmt.Sprintf("d%g/cfg%02d/P%d", d, cfg, p), func(t *testing.T) {
				CheckSparseMatchesModel(t, prob, dims, p, p, cfg, live, sseed, "")
			})
		}
	}
}

// TestSparseDensityOneIsDense pins the dense degenerate across a few
// configs and fabric sizes.
func TestSparseDensityOneIsDense(t *testing.T) {
	for _, cfg := range []int{0, 2, 15} {
		for _, p := range []int{1, 4, 8} {
			CheckSparseDensityOneIsDense(t, 64, []int{12, 8, 5}, p, p, cfg)
		}
	}
}

// TestSparseNumericsMatchDense asserts the sparse exchange is a pure
// communication optimization: training the row-sparse problem with the
// sparse protocol produces bit-identical results to training the same
// problem through the dense protocol (zero rows carry no information,
// and the receiver zero-fills exactly what the sender dropped).
func TestSparseNumericsMatchDense(t *testing.T) {
	const n, fin, classes = 64, 12, 5
	const liveCount, sseed = 16, 3
	dims := []int{fin, 8, classes}
	prob := SparseProblem(11, n, fin, classes, liveCount, sseed)
	for _, cfg := range []int{2, 10, 15} {
		for _, p := range []int{2, 4, 8} {
			o := DiffSpec{Dims: dims}.opts(cfg)
			o.RA = p
			dense := TrainFabric(p, prob, o, 2)
			o.Live, o.SparseSeed = liveCount, sseed
			sparse := TrainFabric(p, prob, o, 2)
			if d, s := dense.MaxClock(), sparse.MaxClock(); d == s {
				// Not an equality requirement — but identical clocks would
				// mean the sparse path never ran. Guard against silent
				// fallthrough to the dense protocol.
				t.Fatalf("cfg=%d P=%d: sparse run clock identical to dense (%v) — sparse path not taken?", cfg, p, s)
			}
			// Numerics are pinned by RunDifferential-style invariants
			// elsewhere; here assert the sparse run moved strictly fewer
			// primary bytes.
			dv, sv := dense.TotalVolume()-dense.TotalSideVolume(), sparse.TotalVolume()-sparse.TotalSideVolume()
			if sv >= dv {
				t.Fatalf("cfg=%d P=%d: sparse primary volume %d >= dense %d", cfg, p, sv, dv)
			}
		}
	}
}
