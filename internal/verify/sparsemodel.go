package verify

import (
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/topo"
)

// SparseProblem builds the standard verification problem with
// row-sparse features: every row outside the planner's live set
// dist.GenRows(sseed, n, live) is zeroed, and every live row is
// guaranteed at least one nonzero. The executor's value scan
// (dist.LiveRows) therefore recovers exactly the planner's assumed
// set, which is what makes the meter-equals-model assertions below
// byte- and clock-exact rather than approximate.
func SparseProblem(seed int64, n, fin, classes, live int, sseed int64) *core.Problem {
	prob := DefaultProblem(seed, n, fin, classes)
	x := tensor.NewDense(n, fin)
	for _, r := range dist.GenRows(sseed, n, live) {
		row := x.Row(int(r))
		copy(row, prob.X.Row(int(r)))
		nonzero := false
		for _, v := range row {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			row[0] = 0.5
		}
	}
	prob.X = x
	return prob
}

// CheckSparseMatchesModel is the sparsity-aware exchange's
// meter-equals-model pin. It trains one epoch of a sparse schedule
// (Options.Live/SparseSeed) on the live fabric and asserts, with no
// tolerance anywhere:
//
//   - the fabric's primary meters (all-to-all + allgather), all-reduce
//     meters, and side-channel meters equal the planner's per-op prices
//     (Schedule.PriceOn) byte-for-byte;
//   - on the flat interconnect, every sparse redistribution's priced
//     metadata and payload bytes equal the §IV-style closed forms
//     (costmodel.SparseExchangeBytes) — the third, schedule-free
//     accounting of the same exchange;
//   - the discrete-event engine replays both executors (sequential and
//     overlap) to bit-identical clocks, time accumulators, and the
//     complete meter matrix (CheckSimMatchesFabric).
//
// prob must come from SparseProblem with the same (liveCount, sseed)
// identity, so the executor's scanned live set equals the planner's.
// tspec, when non-empty, runs the whole check on that interconnect
// (closed-form leg skipped: topology routing legitimately relays bytes
// the flat pair census does not count).
func CheckSparseMatchesModel(t testing.TB, prob *core.Problem, dims []int, p, ra, cfg, liveCount int, sseed int64, tspec string) {
	t.Helper()
	o := DiffSpec{Dims: dims}.opts(cfg)
	o.RA = ra
	o.Live, o.SparseSeed = liveCount, sseed
	var tp *topo.Topology
	if tspec != "" {
		ts, err := topo.ParseSpec(tspec)
		if err != nil {
			t.Fatalf("bad topo spec %q: %v", tspec, err)
		}
		tp = ts.MustTopology(p)
		o.Topology = tp
	}

	fab := TrainFabric(p, prob, o, 1)
	sched := scheduleFor(prob, p, o)
	c := sched.PriceOn(prob.A.NNZ(), hw.A6000(), tp)
	if got := fab.Volume(hw.OpAllToAll) + fab.Volume(hw.OpAllGather); got != c.RDMBytes() {
		t.Fatalf("P=%d RA=%d cfg=%d live=%d: metered RDM volume %d bytes, planner prices %d (Δ=%d)",
			p, ra, cfg, liveCount, got, c.RDMBytes(), got-c.RDMBytes())
	}
	if got := fab.Volume(hw.OpAllReduce); got != c.AllReduce {
		t.Fatalf("P=%d RA=%d cfg=%d live=%d: metered all-reduce %d bytes, planner prices %d",
			p, ra, cfg, liveCount, got, c.AllReduce)
	}
	if got := fab.TotalSideVolume(); got != c.Side {
		t.Fatalf("P=%d RA=%d cfg=%d live=%d: metered side-channel %d bytes, planner prices %d (Δ=%d)",
			p, ra, cfg, liveCount, got, c.Side, got-c.Side)
	}

	if tp == nil {
		// Closed-form leg: reconcile every sparse redistribution's priced
		// bytes against costmodel's schedule-free formulas. PerOp entries
		// are appended in section walk order, so the two walks align.
		live := sched.LiveSet()
		idx := 0
		for i := range sched.Sections {
			for j := range sched.Sections[i].Ops {
				op := &sched.Sections[i].Ops[j]
				oc := c.PerOp[idx]
				idx++
				if op.Kind != plan.KRedist || !op.Sparse ||
					!costmodel.SparseExchangeEligible(p, op.From, op.To) {
					continue
				}
				meta, pay := costmodel.SparseExchangeBytes(p, op.Rows, op.Cols, op.From, op.To, live)
				if oc.Side != meta || oc.AllToAll != pay {
					t.Fatalf("step %d (%v): planner prices meta=%d pay=%d bytes, closed form says meta=%d pay=%d",
						op.Step, op.Kind, oc.Side, oc.AllToAll, meta, pay)
				}
			}
		}
	}

	// Both executors, replayed on the discrete-event engine: clocks,
	// accumulators, and meters must be bit-identical.
	CheckSimMatchesFabric(t, prob, p, 1, o)
}

// CheckSparseDensityOneIsDense asserts the dense-degenerate contract:
// a spec declaring all n rows live compiles to the identical schedule
// as the dense spec — same String, Live normalized away, no sparse ops
// — so a density-1.0 sparse run reproduces the dense path bit-for-bit
// by construction.
func CheckSparseDensityOneIsDense(t testing.TB, n int, dims []int, p, ra, cfg int) {
	t.Helper()
	mk := func(live int) *plan.Schedule {
		return plan.Compile(plan.Spec{
			N: n, Dims: dims, Config: costmodel.ConfigFromID(cfg, len(dims)-1),
			P: p, RA: ra, Memoize: true, InputGrad: true,
			Live: live, SparseSeed: 99,
		}).Optimize()
	}
	dense, full := mk(0), mk(costmodel.LiveCount(n, 1.0))
	if full.Live != 0 {
		t.Fatalf("density 1.0: Live=%d survived normalization", full.Live)
	}
	if d, f := dense.String(), full.String(); d != f {
		t.Fatalf("density 1.0 schedule differs from dense:\ndense:\n%s\nfull:\n%s", d, f)
	}
}
