package verify

import (
	"reflect"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

// CheckElasticOverlapEquivalence runs the same elastic training twice —
// sequential interpreter and overlap DAG executor, both pinned — under
// one fault schedule, and asserts the recovery path is executor-
// independent: identical world evolution (recovery count, survivors,
// rollback points), exactly equal reshard meters and per-epoch comm
// bytes, and bit-identical losses, final weights, and logits. Simulated
// clocks are NOT compared (overlap legitimately finishes earlier), so
// schedules must trigger on epochs, not on clock times — a t-triggered
// crash could fire on different rounds under the two executors.
func CheckElasticOverlapEquivalence(t testing.TB, p int, prob *core.Problem, dims []int, epochs int, faults string, eo core.ElasticOptions) {
	t.Helper()
	sched, err := fault.ParseSchedule(faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sched.Events {
		if ev.Kind == fault.Crash && ev.Epoch < 0 {
			t.Fatalf("verify: %s is clock-triggered; overlap equivalence needs epoch triggers", ev)
		}
	}
	eo.Schedule = sched
	run := func(overlap bool) *core.ElasticResult {
		opts := DiffSpec{Dims: dims}.opts(0)
		opts.Overlap = overlap
		opts.PinExecutor = true
		var el *core.ElasticResult
		NoGoroutineLeak(t, func() {
			el = core.TrainElastic(p, hw.A6000(), prob, opts, epochs, eo)
		})
		return el
	}
	seq := run(false)
	ovl := run(true)

	if ovl.FinalP != seq.FinalP || !reflect.DeepEqual(ovl.FinalSurvivors, seq.FinalSurvivors) {
		t.Fatalf("worlds diverge: overlap P=%d %v, sequential P=%d %v",
			ovl.FinalP, ovl.FinalSurvivors, seq.FinalP, seq.FinalSurvivors)
	}
	if len(ovl.Recoveries) != len(seq.Recoveries) {
		t.Fatalf("overlap took %d recoveries, sequential %d", len(ovl.Recoveries), len(seq.Recoveries))
	}
	for i := range ovl.Recoveries {
		o, s := ovl.Recoveries[i], seq.Recoveries[i]
		if o.AbortEpoch != s.AbortEpoch || o.ResumeEpoch != s.ResumeEpoch ||
			o.OldP != s.OldP || o.NewP != s.NewP ||
			!reflect.DeepEqual(o.Failed, s.Failed) || !reflect.DeepEqual(o.Survivors, s.Survivors) {
			t.Fatalf("recovery %d diverges across executors:\noverlap    %+v\nsequential %+v", i, o, s)
		}
		if o.ReshardBytes != s.ReshardBytes || o.PredictedReshardBytes != s.PredictedReshardBytes {
			t.Fatalf("recovery %d reshard meters diverge: overlap %d/%d, sequential %d/%d",
				i, o.ReshardBytes, o.PredictedReshardBytes, s.ReshardBytes, s.PredictedReshardBytes)
		}
		if o.ControlBytes != s.ControlBytes {
			t.Fatalf("recovery %d control-plane bytes diverge: overlap %d, sequential %d",
				i, o.ControlBytes, s.ControlBytes)
		}
		if (o.Detection == nil) != (s.Detection == nil) {
			t.Fatalf("recovery %d: detection ran on one executor only", i)
		}
		if o.Detection != nil && o.Detection.EventLog() != s.Detection.EventLog() {
			t.Fatalf("recovery %d membership event logs diverge:\n%s\n%s",
				i, o.Detection.EventLog(), s.Detection.EventLog())
		}
	}
	for ep := range seq.Epochs {
		if ovl.Epochs[ep].Loss != seq.Epochs[ep].Loss {
			t.Fatalf("epoch %d: overlap loss %v != sequential %v", ep, ovl.Epochs[ep].Loss, seq.Epochs[ep].Loss)
		}
		if ovl.Epochs[ep].CommBytes != seq.Epochs[ep].CommBytes {
			t.Fatalf("epoch %d: overlap moved %d bytes, sequential %d",
				ep, ovl.Epochs[ep].CommBytes, seq.Epochs[ep].CommBytes)
		}
	}
	if len(ovl.Weights) != len(seq.Weights) {
		t.Fatalf("weight count %d != %d", len(ovl.Weights), len(seq.Weights))
	}
	for i := range ovl.Weights {
		if tensor.MaxAbsDiff(ovl.Weights[i], seq.Weights[i]) != 0 {
			t.Fatalf("weight %d not bit-identical across executors", i)
		}
	}
	if tensor.MaxAbsDiff(ovl.Logits, seq.Logits) != 0 {
		t.Fatal("final logits not bit-identical across executors")
	}
}
