package verify

import (
	"fmt"
	"math"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/tensor"
)

// CheckVertexPermutation asserts training commutes with vertex
// relabelling: running on PermuteProblem(prob, perm) must produce the
// same per-epoch losses and (row-permuted) logits as running on prob.
// Permutation moves every value bitwise but reorders the float32
// reductions inside SpMM and the weight-gradient sums, so the comparison
// uses the dedicated Perm* tolerances rather than bit equality.
func CheckVertexPermutation(t testing.TB, prob *core.Problem, dims []int, epochs, p, cfg int, permSeed int64) {
	t.Helper()
	perm := RandomPerm(permSeed, prob.N())
	twin := PermuteProblem(prob, perm)
	o := DiffSpec{Dims: dims}.opts(cfg)
	a := core.Train(p, hw.A6000(), prob, o, epochs)
	b := core.Train(p, hw.A6000(), twin, o, epochs)
	for ep := range a.Epochs {
		if d := math.Abs(a.Epochs[ep].Loss - b.Epochs[ep].Loss); d > PermLossTol {
			t.Fatalf("epoch %d: permuted loss %v, original %v (|Δ|=%.3g > %g)",
				ep, b.Epochs[ep].Loss, a.Epochs[ep].Loss, d, PermLossTol)
		}
	}
	if d := tensor.MaxAbsDiff(PermuteRows(a.Logits, perm), b.Logits); d > PermLogitsTol {
		t.Fatalf("permuted logits diverge from permuted original logits: max|Δ|=%.3g > %g", d, PermLogitsTol)
	}
}

// CheckFeatureScaling asserts a one-epoch forward pass is exactly
// homogeneous in the inputs: scaling every feature by a power of two
// scales the logits by the same factor bitwise. Scaling by 2 is an
// exponent shift in float32 and commutes exactly with matmul sums and
// ReLU (fl(2a+2b) = 2·fl(a+b)); the claim holds only for the first
// epoch's logits, which both runs compute with identical initial weights
// (Adam's ε makes later weights scale-dependent).
func CheckFeatureScaling(t testing.TB, prob *core.Problem, dims []int, p, cfg int) {
	t.Helper()
	o := DiffSpec{Dims: dims}.opts(cfg)
	a := core.Train(p, hw.A6000(), prob, o, 1)
	b := core.Train(p, hw.A6000(), ScaleFeatures(prob, 2), o, 1)
	for i, v := range a.Logits.Data {
		if b.Logits.Data[i] != 2*v {
			t.Fatalf("logit %d: scaled run %v, want exactly 2·%v = %v",
				i, b.Logits.Data[i], v, 2*v)
		}
	}
}

// CheckRedistRoundTrip asserts a chain of redistributions that returns
// to its starting layout is the exact identity: chain[0] → chain[1] →
// … → chain[0]. Redistribution only moves values (divide/exchange/merge,
// no arithmetic), so every tile must come back bitwise identical.
func CheckRedistRoundTrip(t testing.TB, p, rows, cols int, chain []dist.Layout) {
	t.Helper()
	global := tensor.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			global.Set(i, j, float32(i*1000+j+1))
		}
	}
	fab := comm.NewFabric(p, hw.A6000())
	errs := make([]error, p)
	fab.Run(func(d *comm.Device) {
		m := dist.Distribute(d, chain[0], global)
		for _, l := range chain[1:] {
			m = m.Redistribute(l)
		}
		m = m.Redistribute(chain[0])
		want := dist.Distribute(d, chain[0], global)
		if m.Local.Rows != want.Local.Rows || m.Local.Cols != want.Local.Cols {
			errs[d.Rank] = fmt.Errorf("rank %d: round-trip tile %dx%d, want %dx%d",
				d.Rank, m.Local.Rows, m.Local.Cols, want.Local.Rows, want.Local.Cols)
			return
		}
		for i, v := range want.Local.Data {
			if m.Local.Data[i] != v {
				errs[d.Rank] = fmt.Errorf("rank %d: round-trip tile element %d is %v, want exactly %v",
					d.Rank, i, m.Local.Data[i], v)
				return
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			t.Fatalf("chain %v on P=%d (%dx%d): %v", chain, p, rows, cols, err)
		}
	}
}
