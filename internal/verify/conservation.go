package verify

import (
	"fmt"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// CheckFabricSession asserts the conservation invariants of one traced
// fabric run:
//
//   - no trace events were dropped (the ring buffers held the run);
//   - every per-resource timeline is monotone: kernels and collectives
//     neither run backwards nor overlap on one device resource track
//     (compute, intra link, inter link). Events on different tracks of
//     the same device may interleave freely — that is the overlap
//     executor working as designed — but a single resource can only do
//     one thing at a time;
//   - bytes sent equal bytes received: every collective round
//     (identified by its (group, seq) pair) was recorded by exactly its
//     GroupSize participants, all agreeing on the op, the metered bytes,
//     and the synchronized end time;
//   - the per-round traced bytes sum exactly to the fabric's volume
//     meters (primary plus side channel) — per link tier too — and the
//     round counts to its call counters;
//   - each device's final clock equals the latest traced event end
//     across its tracks (the lane merge takes the max).
//
// fab may be nil (e.g. baselines that do not expose their fabric), which
// skips the meter and clock cross-checks.
func CheckFabricSession(t testing.TB, fab *comm.Fabric, s *trace.Session) {
	t.Helper()
	if err := checkSession(fab, s); err != nil {
		t.Fatal(err)
	}
}

type roundKey struct {
	group string
	seq   uint64
}

type roundInfo struct {
	op    string
	bytes int64
	tier1 int64
	end   float64
	size  int
	seen  int
}

func checkSession(fab *comm.Fabric, s *trace.Session) error {
	rounds := make(map[roundKey]*roundInfo)
	for r := 0; r < s.P; r++ {
		if d := s.Dropped(r); d > 0 {
			return fmt.Errorf("rank %d dropped %d trace events; raise the tracer capacity", r, d)
		}
		prevEnd := make(map[int]float64)
		lastEnd := 0.0
		seenTimed := false
		for i, ev := range s.Events(r) {
			if ev.Class == trace.ClassPhase || ev.Class == trace.ClassRequest || ev.Class == trace.ClassGossip {
				continue // phase, request, and gossip spans nest and overlap by design
			}
			if ev.End < ev.Start {
				return fmt.Errorf("rank %d event %d (%s): runs backwards [%v, %v]", r, i, ev.Op, ev.Start, ev.End)
			}
			if ev.Start < prevEnd[ev.Track] {
				return fmt.Errorf("rank %d track %d event %d (%s): starts at %v before the track's previous event ended at %v",
					r, ev.Track, i, ev.Op, ev.Start, prevEnd[ev.Track])
			}
			prevEnd[ev.Track] = ev.End
			if ev.End > lastEnd {
				lastEnd = ev.End
			}
			seenTimed = true
			if ev.Class != trace.ClassCollective {
				continue
			}
			k := roundKey{ev.Group, ev.Seq}
			ri := rounds[k]
			if ri == nil {
				rounds[k] = &roundInfo{op: ev.Op, bytes: ev.Bytes, tier1: ev.Tier1, end: ev.End, size: ev.GroupSize, seen: 1}
				continue
			}
			if ri.op != ev.Op || ri.size != ev.GroupSize {
				return fmt.Errorf("round %s#%d: rank %d saw %s/%d, another participant %s/%d",
					k.group, k.seq, r, ev.Op, ev.GroupSize, ri.op, ri.size)
			}
			if ri.bytes != ev.Bytes {
				return fmt.Errorf("round %s#%d (%s): rank %d metered %d bytes, another participant %d — sent != received",
					k.group, k.seq, ev.Op, r, ev.Bytes, ri.bytes)
			}
			if ri.tier1 != ev.Tier1 {
				return fmt.Errorf("round %s#%d (%s): rank %d metered %d tier-1 bytes, another participant %d",
					k.group, k.seq, ev.Op, r, ev.Tier1, ri.tier1)
			}
			if ri.end != ev.End {
				return fmt.Errorf("round %s#%d (%s): rank %d ended at %v, another participant at %v — clocks not synchronized",
					k.group, k.seq, ev.Op, r, ev.End, ri.end)
			}
			ri.seen++
		}
		if fab != nil && seenTimed {
			if c := fab.Device(r).Clock(); c != lastEnd {
				return fmt.Errorf("rank %d clock %v != latest traced event end %v", r, c, lastEnd)
			}
		}
	}
	for k, ri := range rounds {
		if ri.seen != ri.size {
			return fmt.Errorf("round %s#%d (%s): recorded by %d of %d participants — bytes sent != bytes received",
				k.group, k.seq, ri.op, ri.seen, ri.size)
		}
	}
	if fab == nil {
		return nil
	}
	var vol, tier1, calls [6]int64
	for _, ri := range rounds {
		if ri.op == "barrier" {
			continue // latency-only; not metered or counted
		}
		kind, ok := kindForOp(ri.op)
		if !ok {
			return fmt.Errorf("collective op %q has no hw.CollectiveKind", ri.op)
		}
		vol[kind] += ri.bytes
		tier1[kind] += ri.tier1
		calls[kind]++
	}
	for i := range vol {
		kind := hw.CollectiveKind(i)
		if metered := fab.Volume(kind) + fab.SideVolume(kind); vol[i] != metered {
			return fmt.Errorf("%s: traced rounds sum to %d bytes, fabric metered %d", kind, vol[i], metered)
		}
		if metered := fab.TierVolume(kind, topo.TierInter) + fab.SideTierVolume(kind, topo.TierInter); tier1[i] != metered {
			return fmt.Errorf("%s: traced rounds sum to %d tier-1 bytes, fabric metered %d", kind, tier1[i], metered)
		}
		intra := vol[i] - tier1[i]
		if metered := fab.TierVolume(kind, topo.TierIntra) + fab.SideTierVolume(kind, topo.TierIntra); intra != metered {
			return fmt.Errorf("%s: traced rounds sum to %d tier-0 bytes, fabric metered %d", kind, intra, metered)
		}
		if c := fab.Calls(kind); calls[i] != c {
			return fmt.Errorf("%s: %d traced rounds, fabric counted %d calls", kind, calls[i], c)
		}
	}
	return nil
}

func kindForOp(op string) (hw.CollectiveKind, bool) {
	for i := 0; i < 6; i++ {
		if k := hw.CollectiveKind(i); k.String() == op {
			return k, true
		}
	}
	return 0, false
}
