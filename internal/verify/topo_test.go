package verify

import (
	"fmt"
	"os"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// topoSpecUnderTest returns the interconnect spec the topology suite
// runs on: the TOPO_SPEC environment variable when set (the CI matrix
// leg exports it), else the issue's reference machine — eight nodes of
// four NVLink-connected devices, InfiniBand between nodes.
func topoSpecUnderTest(tb testing.TB) topo.Spec {
	s := os.Getenv("TOPO_SPEC")
	if s == "" {
		s = "8x4:nvlink,ib"
	}
	sp, err := topo.ParseSpec(s)
	if err != nil {
		tb.Fatalf("TOPO_SPEC=%q: %v", s, err)
	}
	return sp
}

// TestTopoFlatBitIdentical is the backward-compatibility contract over
// the full configuration space: all 16 two-layer orderings × P ∈
// {1,2,4,8}, each trained on the legacy flat fabric and again with an
// explicit Flat topology attached. Makespans, per-kind volumes, side
// volumes, and call counts must match bit-for-bit, with every byte on
// tier 0.
func TestTopoFlatBitIdentical(t *testing.T) {
	prob := DefaultProblem(7, 64, 10, 4)
	dims := []int{10, 8, 4}
	for cfg := 0; cfg < costmodel.NumConfigs(2); cfg++ {
		for _, p := range []int{1, 2, 4, 8} {
			cfg, p := cfg, p
			t.Run(fmt.Sprintf("cfg%02d/P%d", cfg, p), func(t *testing.T) {
				o := DiffSpec{Dims: dims}.opts(cfg)
				CheckFlatTopologyBitIdentical(t, prob, p, o)
			})
		}
	}
}

// TestTopoScheduleMatchesMeters reconciles live fabric meters against
// the planner's closed-form topology pricing, per link tier, across
// orderings and replication factors on the spec under test.
func TestTopoScheduleMatchesMeters(t *testing.T) {
	sp := topoSpecUnderTest(t)
	prob := DefaultProblem(7, 64, 10, 4)
	dims := []int{10, 8, 4}
	for _, cfg := range []int{0, 5, 10, 15} {
		for _, pr := range []struct{ p, ra int }{{4, 4}, {8, 8}, {8, 4}, {8, 2}, {16, 16}, {16, 4}} {
			if pr.p > sp.Devices() {
				continue
			}
			cfg, pr := cfg, pr
			t.Run(fmt.Sprintf("cfg%02d/P%d/RA%d", cfg, pr.p, pr.ra), func(t *testing.T) {
				o := DiffSpec{Dims: dims}.opts(cfg)
				o.RA = pr.ra
				o.Topology = sp.MustTopology(pr.p)
				CheckTopoScheduleMatchesMeters(t, prob, pr.p, o)
			})
		}
	}
}

// TestTopoDifferential runs the differential-equivalence sweep on the
// spec under test: topology routing must change clocks and meters,
// never numerics. A subset of orderings keeps the sweep fast; the CI
// matrix leg re-runs it under -race.
func TestTopoDifferential(t *testing.T) {
	RunDifferential(t, DiffSpec{
		Problem:  DefaultProblem(7, 64, 10, 4),
		Dims:     []int{10, 8, 4},
		Epochs:   2,
		Ps:       []int{2, 4, 8},
		Configs:  []int{0, 6, 9, 15},
		TopoSpec: topoSpecUnderTest(t).String(),
	})
}

// TestTopoDifferentialPartialReplication repeats a slice of the sweep
// with R_A < P, which routes column-group allgathers across node
// boundaries on the spec under test.
func TestTopoDifferentialPartialReplication(t *testing.T) {
	RunDifferential(t, DiffSpec{
		Problem:  DefaultProblem(7, 64, 10, 4),
		Dims:     []int{10, 8, 4},
		Epochs:   2,
		Ps:       []int{8},
		Configs:  []int{0, 15},
		RAs:      func(p int) []int { return []int{2, 4} },
		TopoSpec: topoSpecUnderTest(t).String(),
	})
}

// TestTopoCrossoverP32 is the issue's acceptance point: on the 8x4
// reference machine at P=32, the autotuned hierarchical all-reduce and
// all-gather beat the flat ring in simulated time — first in the
// closed-form model, then on the live fabric moving real bytes.
func TestTopoCrossoverP32(t *testing.T) {
	sp, err := topo.ParseSpec("8x4:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	const p = 32
	tp := sp.MustTopology(p)
	h := hw.A6000()
	world := make([]int, p)
	for i := range world {
		world[i] = i
	}
	const bytes = 1 << 22 // 4 MiB gradient buffer

	_, ringAR := tp.AllReduce(h, topo.Ring, world, bytes)
	algAR, hierAR := tp.AllReduce(h, topo.Hier, world, bytes)
	if algAR != topo.Hier {
		t.Fatalf("hierarchical all-reduce not applicable on %s P=%d", tp.Name, p)
	}
	if hierAR.Time >= ringAR.Time {
		t.Fatalf("hierarchical all-reduce %.6gs not faster than flat ring %.6gs on %s",
			hierAR.Time, ringAR.Time, tp.Name)
	}
	autoAlg, autoAR := tp.AllReduce(h, topo.Auto, world, bytes)
	if autoAR.Time > hierAR.Time {
		t.Fatalf("autotuned all-reduce (%s, %.6gs) worse than hierarchical (%.6gs)",
			autoAlg, autoAR.Time, hierAR.Time)
	}

	chunks := topo.EvenChunks(bytes, p)
	_, ringAG := tp.AllGather(h, topo.Ring, world, chunks)
	algAG, hierAG := tp.AllGather(h, topo.Hier, world, chunks)
	if algAG != topo.Hier {
		t.Fatalf("hierarchical all-gather not applicable on %s P=%d", tp.Name, p)
	}
	if hierAG.Time >= ringAG.Time {
		t.Fatalf("hierarchical all-gather %.6gs not faster than flat ring %.6gs on %s",
			hierAG.Time, ringAG.Time, tp.Name)
	}
	autoAlgAG, autoAG := tp.AllGather(h, topo.Auto, world, chunks)
	if autoAG.Time > hierAG.Time {
		t.Fatalf("autotuned all-gather (%s, %.6gs) worse than hierarchical (%.6gs)",
			autoAlgAG, autoAG.Time, hierAG.Time)
	}

	// Live confirmation: the staged hierarchical schedule's makespan on
	// a real fabric run beats the ring's, moving identical payloads.
	elems := bytes / 4
	run := func(alg topo.Algorithm) float64 {
		fab := comm.NewFabric(p, h)
		fab.SetTopology(tp)
		fab.SetAlgorithm(hw.OpAllReduce, alg)
		fab.Run(func(d *comm.Device) {
			buf := make([]float32, elems)
			for i := range buf {
				buf[i] = float32(d.Rank + i)
			}
			d.AllReduceSum(world, buf)
		})
		return fab.MaxClock()
	}
	ringClock := run(topo.Ring)
	hierClock := run(topo.Hier)
	if hierClock >= ringClock {
		t.Fatalf("live hierarchical all-reduce makespan %.6gs not faster than ring %.6gs",
			hierClock, ringClock)
	}
}
