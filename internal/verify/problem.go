package verify

import (
	"math/rand"

	"gnnrdm/internal/core"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// DefaultProblem builds the standard learnable verification problem: a
// planted-partition graph with GCN-normalized adjacency and
// class-correlated synthetic features. n divisible by every fabric size
// under test keeps Horizontal row blocks uniform, which the byte-exact
// volume comparisons rely on (§IV's N/P terms assume even splits).
func DefaultProblem(seed int64, n, fin, classes int) *core.Problem {
	prob := RawProblem(seed, n, fin, classes)
	prob.A = sparse.GCNNormalize(prob.A)
	return prob
}

// RawProblem is DefaultProblem without the GCN normalization — for
// trainers (GraphSAINT) that normalize internally.
func RawProblem(seed int64, n, fin, classes int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	adj, labels := graph.PlantedPartition(rng, n, int64(4*n), classes, 0.8)
	return &core.Problem{
		A:      adj,
		X:      graph.SynthesizeFeatures(rng, labels, classes, fin, 0.8),
		Labels: labels,
	}
}

// RandomPerm returns a deterministic random permutation of [0, n):
// perm[old] = new.
func RandomPerm(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// PermuteProblem relabels the problem's vertices: adjacency becomes
// PAPᵀ, features/labels/masks are row-permuted. Entry values are moved
// bitwise (no arithmetic), so the permuted problem is exactly the same
// computation up to reduction order.
func PermuteProblem(prob *core.Problem, perm []int) *core.Problem {
	out := &core.Problem{
		A:      permuteCSR(prob.A, perm),
		X:      PermuteRows(prob.X, perm),
		Labels: make([]int32, len(prob.Labels)),
	}
	for i, l := range prob.Labels {
		out.Labels[perm[i]] = l
	}
	if prob.TrainMask != nil {
		out.TrainMask = make([]bool, len(prob.TrainMask))
		for i, m := range prob.TrainMask {
			out.TrainMask[perm[i]] = m
		}
	}
	if prob.LossWeights != nil {
		out.LossWeights = make([]float32, len(prob.LossWeights))
		for i, w := range prob.LossWeights {
			out.LossWeights[perm[i]] = w
		}
	}
	if prob.ATranspose != nil {
		out.ATranspose = permuteCSR(prob.ATranspose, perm)
	}
	return out
}

// PermuteRows returns a copy of m with row i moved to row perm[i].
func PermuteRows(m *tensor.Dense, perm []int) *tensor.Dense {
	out := tensor.NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(perm[i]), m.Row(i))
	}
	return out
}

// permuteCSR returns PAPᵀ for the permutation matrix P defined by perm.
// Values travel untouched; only coordinates change.
func permuteCSR(a *sparse.CSR, perm []int) *sparse.CSR {
	coords := make([]sparse.Coord, 0, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			coords = append(coords, sparse.Coord{
				Row: int32(perm[i]),
				Col: int32(perm[a.ColIdx[p]]),
				Val: a.Val[p],
			})
		}
	}
	return sparse.FromCoords(a.Rows, a.Cols, coords)
}

// ScaleFeatures returns the problem with every input feature multiplied
// by s. For powers of two the scaling is exact in float32 (exponent
// shift), which CheckFeatureScaling exploits for bitwise assertions.
func ScaleFeatures(prob *core.Problem, s float32) *core.Problem {
	out := *prob
	out.X = prob.X.Clone()
	for i := range out.X.Data {
		out.X.Data[i] *= s
	}
	return &out
}
