package verify

import (
	"os"
	"strconv"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/member"
)

// The ISSUE's acceptance sweep: crashes at P=8 shrinking to P' ∈ {7, 4}
// must converge to the fault-free single-device reference, and every
// recovery's metered redistribution must equal the cost model's shrink
// prediction byte for byte.
func TestElasticRecoveryEquivalence(t *testing.T) {
	RunElastic(t, ElasticSpec{
		Problem: DefaultProblem(3, 64, 12, 4),
		Dims:    []int{12, 10, 4},
		Epochs:  6,
		Cases: []ElasticCase{
			{Name: "P8to7", P: 8, Faults: "crash@rank3:epoch2", WantFinalP: 7, WantRecoveries: 1},
			{Name: "P8to4", P: 8,
				Faults:     "crash@rank1:epoch2,crash@rank4:epoch2,crash@rank5:epoch2,crash@rank6:epoch2",
				WantFinalP: 4, WantRecoveries: 1},
			{Name: "P8to7to4-sequential", P: 8,
				Faults:     "crash@rank7:epoch1,crash@rank1:epoch3,crash@rank3:epoch3,crash@rank5:epoch3",
				WantFinalP: 4, WantRecoveries: 2},
			{Name: "P4to3-with-noise", P: 4,
				Faults:     "crash@rank2:epoch3,slow@rank1:1.5x,drop@rank0:epoch1",
				WantFinalP: 3, WantRecoveries: 1},
		},
	})
}

// Same seed, same schedule ⇒ byte-identical trace, twice over: once for
// a clean run and once through a crash and recovery.
func TestElasticTraceByteDeterminism(t *testing.T) {
	prob := DefaultProblem(3, 64, 12, 4)
	CheckElasticTraceDeterminism(t, 4, prob, []int{12, 8, 4}, 4, "", 7)
	CheckElasticTraceDeterminism(t, 4, prob, []int{12, 8, 4}, 4,
		"crash@rank2:epoch2,flip@rank0:epoch1", 7)
}

// Elastic recovery must be executor-independent: the overlap DAG
// executor and the sequential interpreter take the identical recovery
// path with bit-identical numerics and exactly equal meters — through a
// single crash, through crash-plus-noise (drops and a partition cut on
// the retry path), and through gossip-triggered re-formation.
func TestElasticOverlapEquivalence(t *testing.T) {
	prob := DefaultProblem(3, 64, 12, 4)
	dims := []int{12, 10, 4}
	t.Run("crash", func(t *testing.T) {
		CheckElasticOverlapEquivalence(t, 4, prob, dims, 6, "crash@rank2:epoch3",
			core.ElasticOptions{FaultSeed: 1})
	})
	t.Run("crash-noise", func(t *testing.T) {
		CheckElasticOverlapEquivalence(t, 4, prob, dims, 6,
			"crash@rank1:epoch2,drop@rank0:epoch1,partition@0+1|2+3:epoch4",
			core.ElasticOptions{FaultSeed: 3})
	})
	t.Run("gossip", func(t *testing.T) {
		CheckElasticOverlapEquivalence(t, 4, prob, dims, 6, "crash@rank3:epoch2",
			core.ElasticOptions{FaultSeed: 1, Membership: &member.Config{}})
	})
}

// A partition cut is absorbed by the retry path without re-formation
// and without disturbing convergence.
func TestElasticPartitionAbsorbed(t *testing.T) {
	prob := DefaultProblem(3, 64, 12, 4)
	opts := DiffSpec{Dims: []int{12, 10, 4}}.opts(0)
	sched, err := fault.ParseSchedule("partition@0+1|2+3:epoch1")
	if err != nil {
		t.Fatal(err)
	}
	var el *core.ElasticResult
	NoGoroutineLeak(t, func() {
		el = core.TrainElastic(4, hw.A6000(), prob, opts, 4,
			core.ElasticOptions{Schedule: sched, FaultSeed: 1})
	})
	if len(el.Recoveries) != 0 || el.FinalP != 4 {
		t.Fatalf("transient partition forced a re-formation: %+v", el.Recoveries)
	}
	clean := core.TrainElastic(4, hw.A6000(), prob, opts, 4, core.ElasticOptions{})
	for ep := range clean.Epochs {
		if el.Epochs[ep].Loss != clean.Epochs[ep].Loss {
			t.Fatalf("epoch %d: partitioned loss %v != clean %v", ep, el.Epochs[ep].Loss, clean.Epochs[ep].Loss)
		}
	}
	// The retried round costs simulated time, not extra primary bytes.
	if el.Epochs[1].CommBytes != clean.Epochs[1].CommBytes {
		t.Fatalf("partition changed epoch 1 volume: %d vs %d", el.Epochs[1].CommBytes, clean.Epochs[1].CommBytes)
	}
	if el.Epochs[1].CommTime <= clean.Epochs[1].CommTime {
		t.Fatal("partition retry charged no extra simulated comm time")
	}
}

// Chaos sweep: randomized but seed-deterministic schedules (CI runs a
// matrix of CHAOS_SEED values). Whatever the schedule throws at the
// world, training must finish on some P' >= 1, meter every shrink
// exactly, and leak no goroutines.
func TestElasticChaosSeed(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	const p, epochs = 8, 5
	sched := fault.RandomSchedule(seed, p, epochs)
	t.Logf("chaos seed %d: %s", seed, sched)
	prob := DefaultProblem(3, 64, 12, 4)
	opts := DiffSpec{Dims: []int{12, 10, 4}}.opts(0)

	var el *core.ElasticResult
	NoGoroutineLeak(t, func() {
		el = core.TrainElastic(p, hw.A6000(), prob, opts, epochs,
			core.ElasticOptions{Schedule: sched, FaultSeed: seed})
	})
	if el.FinalP < 1 || el.FinalP > p {
		t.Fatalf("implausible final world size %d", el.FinalP)
	}
	if want := p - len(sched.Crashes()); el.FinalP != want {
		t.Fatalf("final P'=%d, schedule %q implies %d", el.FinalP, sched, want)
	}
	for i, rec := range el.Recoveries {
		if rec.ReshardBytes != rec.PredictedReshardBytes {
			t.Fatalf("recovery %d: metered %d != predicted %d", i, rec.ReshardBytes, rec.PredictedReshardBytes)
		}
	}
	last := el.Epochs[len(el.Epochs)-1].Loss
	if !(last < el.Epochs[0].Loss) {
		t.Fatalf("chaos run did not learn: %v -> %v", el.Epochs[0].Loss, last)
	}
}
