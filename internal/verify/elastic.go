package verify

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"gnnrdm/internal/core"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/trace"
)

// NoGoroutineLeak runs fn and fails the test if the process goroutine
// count has not returned to its starting level shortly afterwards. Use
// it around fabric runs that exercise crash/abort paths: a rank blocked
// forever in an abandoned rendezvous shows up here even when the run
// itself returned.
func NoGoroutineLeak(t testing.TB, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("verify: goroutine leak: %d before, %d after (a rank is likely parked in a dead rendezvous)",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ElasticCase is one entry of an elastic-recovery equivalence sweep.
type ElasticCase struct {
	Name string
	// P is the starting world size.
	P int
	// Faults is the -faults grammar schedule to inject.
	Faults string
	// WantFinalP is the expected world size after all recoveries.
	WantFinalP int
	// WantRecoveries is the expected number of world re-formations.
	WantRecoveries int
}

// ElasticSpec is a table-driven elastic-recovery sweep: each case trains
// under an injected fault schedule and must (a) finish on the expected
// shrunken world, (b) match the fault-free single-device reference
// within the package tolerances, and (c) meter recovery redistribution
// traffic exactly equal to the cost model's shrink prediction.
type ElasticSpec struct {
	Problem *core.Problem
	Dims    []int
	Epochs  int
	Cases   []ElasticCase
	// FaultSeed seeds the injector (default 1).
	FaultSeed int64
}

// RunElastic executes the sweep, one subtest per case.
func RunElastic(t *testing.T, spec ElasticSpec) {
	t.Helper()
	seed := spec.FaultSeed
	if seed == 0 {
		seed = 1
	}
	opts := DiffSpec{Dims: spec.Dims}.opts(0)
	ref := core.ReferenceTrain(spec.Problem, opts, spec.Epochs)
	refAcc := nn.Accuracy(ref.Logits, spec.Problem.Labels, nil)

	for _, c := range spec.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			sched, err := fault.ParseSchedule(c.Faults)
			if err != nil {
				t.Fatal(err)
			}
			var el *core.ElasticResult
			NoGoroutineLeak(t, func() {
				el = core.TrainElastic(c.P, hw.A6000(), spec.Problem, opts, spec.Epochs,
					core.ElasticOptions{Schedule: sched, FaultSeed: seed})
			})
			if el.FinalP != c.WantFinalP {
				t.Fatalf("finished on P'=%d, want %d (recoveries: %+v)", el.FinalP, c.WantFinalP, el.Recoveries)
			}
			if len(el.Recoveries) != c.WantRecoveries {
				t.Fatalf("%d recoveries, want %d: %+v", len(el.Recoveries), c.WantRecoveries, el.Recoveries)
			}
			for i, rec := range el.Recoveries {
				if rec.ReshardBytes != rec.PredictedReshardBytes {
					t.Fatalf("recovery %d: metered reshard %d bytes, cost model predicts %d",
						i, rec.ReshardBytes, rec.PredictedReshardBytes)
				}
				// Zero bytes is legitimate: when every surviving panel
				// nests inside its new panel the whole gap refills by
				// storage reload, so only meter == prediction is asserted.
			}
			// The recovered run's final timeline must match the fault-free
			// single-device reference within the documented tolerances.
			for ep, want := range ref.Losses {
				if d := math.Abs(el.Epochs[ep].Loss - want); d > LossTol {
					t.Fatalf("epoch %d loss %v, reference %v (|Δ|=%.3g > %g)",
						ep, el.Epochs[ep].Loss, want, d, LossTol)
				}
			}
			if d := tensor.MaxAbsDiff(el.Logits, ref.Logits); d > LogitsTol {
				t.Fatalf("final logits diverge from reference: max|Δ|=%.3g > %g", d, LogitsTol)
			}
			for i := range el.Weights {
				if d := tensor.MaxAbsDiff(el.Weights[i], ref.Weights[i]); d > WeightTol {
					t.Fatalf("weight %d diverges from reference: max|Δ|=%.3g > %g", i, d, WeightTol)
				}
			}
			acc := el.Accuracy(spec.Problem.Labels, nil)
			if d := math.Abs(acc - refAcc); d > AccTol {
				t.Fatalf("accuracy %v, reference %v (|Δ|=%.3g > %g)", acc, refAcc, d, AccTol)
			}
		})
	}
}

// CheckElasticTraceDeterminism runs the same elastic training twice with
// tracing enabled and asserts the exported Chrome traces are identical
// byte for byte — the repo's strongest reproducibility claim: same seed,
// same schedule ⇒ same simulated timeline, same metered bytes, same
// trace file.
func CheckElasticTraceDeterminism(t testing.TB, p int, prob *core.Problem, dims []int, epochs int, faults string, seed int64) {
	t.Helper()
	sched, err := fault.ParseSchedule(faults)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		opts := DiffSpec{Dims: dims}.opts(0)
		opts.Tracer = trace.NewTracer(1 << 16)
		core.TrainElastic(p, hw.A6000(), prob, opts, epochs,
			core.ElasticOptions{Schedule: sched, FaultSeed: seed})
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, opts.Tracer); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("identical elastic runs produced different traces (%d vs %d bytes, first divergence at offset %d: %s)",
			len(a), len(b), i, contextAround(a, b, i))
	}
}

func contextAround(a, b []byte, i int) string {
	grab := func(s []byte) string {
		lo, hi := i-30, i+30
		if lo < 0 {
			lo = 0
		}
		if hi > len(s) {
			hi = len(s)
		}
		return string(s[lo:hi])
	}
	return fmt.Sprintf("%q vs %q", grab(a), grab(b))
}
