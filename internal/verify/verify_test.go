package verify

// Self-tests: the oracle must itself be tested, and its failure
// detection can only be exercised here — the suites in core, dist, saint
// and baselines only ever see it pass.

import (
	"strings"
	"testing"
	"time"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/trace"
)

// emitRound records one consistent collective round on every rank.
func emitRound(tr *trace.Tracer, ranks int, seq uint64, op string, bytes int64, start, end float64) {
	for r := 0; r < ranks; r++ {
		tr.Emit(r, trace.Event{
			Class: trace.ClassCollective, Op: op, Group: "0,1", Seq: seq,
			GroupSize: ranks, Bytes: bytes, Start: start, End: end,
		})
	}
}

func wantCheckErr(t *testing.T, s *trace.Session, substr string) {
	t.Helper()
	err := checkSession(nil, s)
	if err == nil {
		t.Fatalf("checkSession passed, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("checkSession error %q does not mention %q", err, substr)
	}
}

func TestCheckSessionHandBuilt(t *testing.T) {
	t.Run("consistent", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("good", 2)
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 0, End: 1})
		emitRound(tr, 2, 1, "allgather", 8, 1, 2)
		emitRound(tr, 2, 2, "alltoall", 16, 2, 3)
		if err := checkSession(nil, s); err != nil {
			t.Fatalf("consistent session rejected: %v", err)
		}
	})
	t.Run("backwards event", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("bad", 1)
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 2, End: 1})
		wantCheckErr(t, s, "runs backwards")
	})
	t.Run("overlapping events", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("bad", 1)
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 0, End: 2})
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "spmm", Start: 1, End: 3})
		wantCheckErr(t, s, "before the track's previous event ended")
	})
	t.Run("interleaved tracks accepted", func(t *testing.T) {
		// The overlap executor's signature shape: a link-track collective
		// spanning two compute-track kernels on the same device. Each
		// track is monotone, the merged timeline is not — and that is
		// conservation-legal, because compute and link are distinct
		// resources.
		tr := trace.NewTracer(0)
		s := tr.StartSession("good", 2)
		for r := 0; r < 2; r++ {
			tr.Emit(r, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 0, End: 2})
			tr.Emit(r, trace.Event{Class: trace.ClassCollective, Op: "allreduce", Group: "0,1", Seq: 1,
				GroupSize: 2, Bytes: 8, Start: 1, End: 3, Track: 1})
			tr.Emit(r, trace.Event{Class: trace.ClassKernel, Op: "spmm", Start: 2, End: 4})
		}
		if err := checkSession(nil, s); err != nil {
			t.Fatalf("interleaved per-resource tracks must be accepted: %v", err)
		}
	})
	t.Run("interleaved same track rejected", func(t *testing.T) {
		// The same interleaving on ONE track is still a conservation
		// violation: a single resource cannot run two things at once.
		tr := trace.NewTracer(0)
		s := tr.StartSession("bad", 1)
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 0, End: 2, Track: 1})
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "spmm", Start: 1, End: 3, Track: 1})
		wantCheckErr(t, s, "before the track's previous event ended")
	})
	t.Run("byte mismatch across ranks", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("bad", 2)
		tr.Emit(0, trace.Event{Class: trace.ClassCollective, Op: "allgather", Group: "0,1", Seq: 1, GroupSize: 2, Bytes: 8, Start: 0, End: 1})
		tr.Emit(1, trace.Event{Class: trace.ClassCollective, Op: "allgather", Group: "0,1", Seq: 1, GroupSize: 2, Bytes: 12, Start: 0, End: 1})
		wantCheckErr(t, s, "sent != received")
	})
	t.Run("unsynchronized end", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("bad", 2)
		tr.Emit(0, trace.Event{Class: trace.ClassCollective, Op: "allgather", Group: "0,1", Seq: 1, GroupSize: 2, Bytes: 8, Start: 0, End: 1})
		tr.Emit(1, trace.Event{Class: trace.ClassCollective, Op: "allgather", Group: "0,1", Seq: 1, GroupSize: 2, Bytes: 8, Start: 0, End: 1.5})
		wantCheckErr(t, s, "not synchronized")
	})
	t.Run("missing participant", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("bad", 2)
		tr.Emit(0, trace.Event{Class: trace.ClassCollective, Op: "allgather", Group: "0,1", Seq: 1, GroupSize: 2, Bytes: 8, Start: 0, End: 1})
		wantCheckErr(t, s, "recorded by 1 of 2")
	})
	t.Run("dropped events", func(t *testing.T) {
		tr := trace.NewTracer(2)
		s := tr.StartSession("bad", 1)
		for i := 0; i < 3; i++ {
			tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: float64(i), End: float64(i + 1)})
		}
		wantCheckErr(t, s, "dropped")
	})
	t.Run("phases exempt", func(t *testing.T) {
		tr := trace.NewTracer(0)
		s := tr.StartSession("good", 1)
		// A phase spanning two kernels overlaps both — allowed.
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 0, End: 1})
		tr.Emit(0, trace.Event{Class: trace.ClassPhase, Op: "forward", Start: 0, End: 2})
		tr.Emit(0, trace.Event{Class: trace.ClassKernel, Op: "gemm", Start: 1, End: 2})
		if err := checkSession(nil, s); err != nil {
			t.Fatalf("phase events must be exempt from monotonicity: %v", err)
		}
	})
}

func TestCheckSessionRealFabric(t *testing.T) {
	tr := trace.NewTracer(0)
	fab := comm.NewFabric(2, hw.A6000())
	fab.SetTracer(tr, "self")
	fab.Run(func(d *comm.Device) {
		d.AllGather(d.World(), []float32{float32(d.Rank)})
		d.AllReduceSum(d.World(), []float32{1, 2})
		d.Barrier(d.World())
		d.SetSideChannel(true)
		d.AllToAll(d.World(), [][]float32{{9}, {10}})
		d.SetSideChannel(false)
	})
	s := tr.Sessions()[0]
	if err := checkSession(fab, s); err != nil {
		t.Fatalf("real traced run rejected: %v", err)
	}
	// Meter cross-check must notice when meters and trace disagree.
	fab.ResetVolumes()
	err := checkSession(fab, s)
	if err == nil || !strings.Contains(err.Error(), "fabric metered") {
		t.Fatalf("reset meters should fail the trace cross-check, got %v", err)
	}
}

func TestNoDeadlock(t *testing.T) {
	if err := noDeadlock(time.Second, func() {}); err != nil {
		t.Fatalf("returning function flagged: %v", err)
	}
	block := make(chan struct{})
	defer close(block)
	if err := noDeadlock(50*time.Millisecond, func() { <-block }); err == nil {
		t.Fatal("blocked function not flagged as deadlock")
	}
	if err := noDeadlock(time.Second, func() { panic("boom") }); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panicking function should surface as error, got %v", err)
	}
}

func TestPermuteProblemMovesEntries(t *testing.T) {
	prob := DefaultProblem(3, 16, 4, 2)
	perm := RandomPerm(9, prob.N())
	twin := PermuteProblem(prob, perm)
	if twin.A.NNZ() != prob.A.NNZ() {
		t.Fatalf("permutation changed NNZ: %d -> %d", prob.A.NNZ(), twin.A.NNZ())
	}
	// Every entry A[i,j] must appear bitwise at A'[perm[i],perm[j]].
	for i := 0; i < prob.A.Rows; i++ {
		for p := prob.A.RowPtr[i]; p < prob.A.RowPtr[i+1]; p++ {
			j, v := int(prob.A.ColIdx[p]), prob.A.Val[p]
			if got := twin.A.At(perm[i], perm[j]); got != v {
				t.Fatalf("A[%d,%d]=%v landed at A'[%d,%d]=%v", i, j, v, perm[i], perm[j], got)
			}
		}
	}
	for i := 0; i < prob.X.Rows; i++ {
		for c := 0; c < prob.X.Cols; c++ {
			if twin.X.At(perm[i], c) != prob.X.At(i, c) {
				t.Fatalf("X row %d not moved bitwise to row %d", i, perm[i])
			}
		}
	}
	for i, l := range prob.Labels {
		if twin.Labels[perm[i]] != l {
			t.Fatalf("label %d not moved to %d", i, perm[i])
		}
	}
}

func TestScaleFeaturesExact(t *testing.T) {
	prob := DefaultProblem(3, 16, 4, 2)
	scaled := ScaleFeatures(prob, 2)
	for i, v := range prob.X.Data {
		if scaled.X.Data[i] != 2*v {
			t.Fatalf("element %d: %v, want exactly %v", i, scaled.X.Data[i], 2*v)
		}
	}
	if &scaled.X.Data[0] == &prob.X.Data[0] {
		t.Fatal("ScaleFeatures must not alias the original features")
	}
	if scaled.A != prob.A {
		t.Fatal("ScaleFeatures must share the adjacency")
	}
}
