package verify

import (
	"os"
	"strconv"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/member"
	"gnnrdm/internal/topo"
)

// TestGossipConvergenceSweep is the acceptance sweep from the roadmap:
// gossip membership convergence for P in {8, 64, 256, 1024}, rounds at
// or below the closed-form epidemic bound, per-round byte censuses
// exactly equal to the cost-model prediction, seed-deterministic. CI's
// membership chaos job re-runs it across its MEMBER_SEED matrix.
func TestGossipConvergenceSweep(t *testing.T) {
	seed := int64(1)
	if env := os.Getenv("MEMBER_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad MEMBER_SEED %q: %v", env, err)
		}
		seed = v
	}
	for _, p := range []int{8, 64, 256, 1024} {
		for _, dead := range [][]int{{0}, {p / 4, p / 2, p - 1}} {
			rep, err := CheckGossipConvergence(p, dead, member.Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("P=%d dead=%v: %d rounds, %d msgs, %d bytes", p, dead, rep.Rounds, rep.Msgs, rep.Bytes)
		}
	}
}

// TestGossipElasticTopology: gossip-triggered recovery on a priced
// hierarchical interconnect. CI's membership chaos job drives this
// across a (MEMBER_SEED × TOPO_SPEC) matrix under -race: whatever the
// topology, the survivors converge on the identical view, control-plane
// bytes equal the closed form, and two runs are byte-identical.
func TestGossipElasticTopology(t *testing.T) {
	spec := "2x2:nvlink,ib"
	if env := os.Getenv("TOPO_SPEC"); env != "" {
		spec = env
	}
	sp, err := topo.ParseSpec(spec)
	if err != nil {
		t.Fatalf("bad TOPO_SPEC %q: %v", spec, err)
	}
	seed := int64(1)
	if env := os.Getenv("MEMBER_SEED"); env != "" {
		if seed, err = strconv.ParseInt(env, 10, 64); err != nil {
			t.Fatalf("bad MEMBER_SEED %q: %v", env, err)
		}
	}
	prob := DefaultProblem(3, 64, 12, 4)
	sched, err := fault.ParseSchedule("crash@rank1:epoch2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *core.ElasticResult {
		opts := DiffSpec{Dims: []int{12, 10, 4}}.opts(0)
		opts.Topology = sp.MustTopology(4)
		var el *core.ElasticResult
		NoGoroutineLeak(t, func() {
			el = core.TrainElastic(4, hw.A6000(), prob, opts, 4, core.ElasticOptions{
				Schedule: sched, FaultSeed: seed, Membership: &member.Config{Seed: seed},
			})
		})
		return el
	}
	a, b := run(), run()
	if len(a.Recoveries) != 1 {
		t.Fatalf("want one recovery, got %+v", a.Recoveries)
	}
	rec := a.Recoveries[0]
	if rec.Detection == nil || !rec.Detection.Converged {
		t.Fatal("gossip detection missing or unconverged")
	}
	if rec.ControlBytes == 0 || rec.ControlBytes != rec.PredictedControlBytes {
		t.Fatalf("control-plane meter %d != prediction %d", rec.ControlBytes, rec.PredictedControlBytes)
	}
	if rec.ReshardBytes != rec.PredictedReshardBytes {
		t.Fatalf("reshard meter %d != prediction %d", rec.ReshardBytes, rec.PredictedReshardBytes)
	}
	if a.Recoveries[0].Detection.EventLog() != b.Recoveries[0].Detection.EventLog() {
		t.Fatal("membership event logs differ between identical runs")
	}
	if a.FinalLoss() != b.FinalLoss() {
		t.Fatalf("final losses differ: %v vs %v", a.FinalLoss(), b.FinalLoss())
	}
}

// TestGossipConvergenceConfigVariants exercises non-default protocol
// parameters through the checker: wider suspicion windows, more
// proxies, a tighter piggyback cap. The bound adapts to the config and
// the meter-equal discipline must hold in every variant.
func TestGossipConvergenceConfigVariants(t *testing.T) {
	variants := []member.Config{
		{Seed: 5, SuspicionPeriods: 6},
		{Seed: 5, K: 1},
		{Seed: 5, MaxPiggyback: 2, Lambda: 4},
	}
	for _, cfg := range variants {
		if _, err := CheckGossipConvergence(64, []int{7, 31}, cfg); err != nil {
			t.Errorf("config %+v: %v", cfg, err)
		}
	}
}
