package verify

import (
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// This file reconciles the topology-aware fabric against the planner's
// closed-form topology pricing: the same invariants the flat checks
// enforce, extended per link tier. The planner, the topo cost library,
// and the live fabric are three accountings of one epoch; they must
// agree byte-for-byte on every tier.

// CheckTopoScheduleMatchesMeters trains one epoch with opts.Topology
// set and reconciles the fabric's meters against the compiled
// schedule's topology-aware prices exactly: RDM volume, all-reduce
// volume, side-channel mask bytes, and — the topology-specific
// invariant — the per-link-tier split of both the primary and side
// volumes. Options must not request per-epoch accuracy evaluation
// (EvalMask), whose all-reduce is outside the epoch schedule.
func CheckTopoScheduleMatchesMeters(t testing.TB, prob *core.Problem, p int, o core.Options) {
	t.Helper()
	if o.Topology == nil {
		panic("verify: CheckTopoScheduleMatchesMeters without Topology")
	}
	if o.EvalMask != nil {
		panic("verify: CheckTopoScheduleMatchesMeters with EvalMask")
	}
	fab := TrainFabric(p, prob, o, 1)
	c := scheduleFor(prob, p, o).PriceOn(prob.A.NNZ(), hw.A6000(), o.Topology)
	if got := fab.Volume(hw.OpAllToAll) + fab.Volume(hw.OpAllGather); got != c.RDMBytes() {
		t.Fatalf("P=%d on %s: metered RDM volume %d bytes, schedule prices %d (Δ=%d)",
			p, o.Topology.Name, got, c.RDMBytes(), got-c.RDMBytes())
	}
	if got := fab.Volume(hw.OpAllReduce); got != c.AllReduce {
		t.Fatalf("P=%d on %s: metered all-reduce volume %d bytes, schedule prices %d (Δ=%d)",
			p, o.Topology.Name, got, c.AllReduce, got-c.AllReduce)
	}
	if got := fab.TotalSideVolume(); got != c.Side {
		t.Fatalf("P=%d on %s: metered side-channel volume %d bytes, schedule prices %d (Δ=%d)",
			p, o.Topology.Name, got, c.Side, got-c.Side)
	}
	for tier := 0; tier < topo.NumTiers; tier++ {
		var prim, side int64
		for k := 0; k < 6; k++ {
			prim += fab.TierVolume(hw.CollectiveKind(k), tier)
			side += fab.SideTierVolume(hw.CollectiveKind(k), tier)
		}
		if prim != c.Tier[tier] {
			t.Fatalf("P=%d on %s: metered tier-%d volume %d bytes, schedule prices %d (Δ=%d)",
				p, o.Topology.Name, tier, prim, c.Tier[tier], prim-c.Tier[tier])
		}
		if side != c.SideTier[tier] {
			t.Fatalf("P=%d on %s: metered tier-%d side volume %d bytes, schedule prices %d (Δ=%d)",
				p, o.Topology.Name, tier, side, c.SideTier[tier], side-c.SideTier[tier])
		}
	}
}

// CheckFlatTopologyBitIdentical trains the same epoch twice — once on
// the legacy flat fabric, once with an explicit Flat topology attached —
// and asserts the runs are bit-for-bit indistinguishable: identical
// makespan, identical per-kind volumes, side volumes and call counts,
// and every metered byte on tier 0. This is the backward-compatibility
// contract: attaching a single-tier topology must not change anything.
func CheckFlatTopologyBitIdentical(t testing.TB, prob *core.Problem, p int, o core.Options) {
	t.Helper()
	flat := TrainFabric(p, prob, o, 1)
	o.Topology = topo.Flat(p, hw.A6000())
	topod := TrainFabric(p, prob, o, 1)
	if a, b := flat.MaxClock(), topod.MaxClock(); a != b {
		t.Fatalf("P=%d: flat makespan %v, Flat-topology makespan %v — not bit-identical", p, a, b)
	}
	for k := 0; k < 6; k++ {
		kind := hw.CollectiveKind(k)
		if a, b := flat.Volume(kind), topod.Volume(kind); a != b {
			t.Fatalf("P=%d %s: flat volume %d, Flat-topology volume %d", p, kind, a, b)
		}
		if a, b := flat.SideVolume(kind), topod.SideVolume(kind); a != b {
			t.Fatalf("P=%d %s: flat side volume %d, Flat-topology side volume %d", p, kind, a, b)
		}
		if a, b := flat.Calls(kind), topod.Calls(kind); a != b {
			t.Fatalf("P=%d %s: flat calls %d, Flat-topology calls %d", p, kind, a, b)
		}
		if v := topod.TierVolume(kind, topo.TierInter) + topod.SideTierVolume(kind, topo.TierInter); v != 0 {
			t.Fatalf("P=%d %s: %d bytes metered on the inter-node tier of a flat topology", p, kind, v)
		}
		if a, b := topod.TierVolume(kind, topo.TierIntra), topod.Volume(kind); a != b {
			t.Fatalf("P=%d %s: tier-0 meter %d != volume %d on a flat topology", p, kind, a, b)
		}
	}
}
