package verify

import (
	"reflect"
	"testing"
	"time"

	"gnnrdm/internal/serve"
	"gnnrdm/internal/topo"
)

func serveFixture() (cfg serve.Config, ts serve.TrafficSpec) {
	cfg = serve.Config{
		Dims:     []int{16, 16, 4},
		ConfigID: 0,
		CacheCap: 64,
		MaxBatch: 8,
		Deadline: 1e-3,
		Seed:     11,
	}
	ts = serve.TrafficSpec{Queries: 300, Users: 2_000_000, Skew: 1.5, Rate: 1000, Seed: 5}
	return cfg, ts
}

func TestServeMatchesModelFlat(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	r := CheckServeMatchesModel(t, prob, cfg, 4, ts)
	if r.Misses == 0 || r.Hits == 0 {
		t.Fatalf("stream should mix hits and misses, got %d/%d", r.Hits, r.Misses)
	}
	if r.BytesTotal <= 0 {
		t.Fatal("distributed serving must move bytes")
	}
}

func TestServeMatchesModelGemmFirst(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	// All-GEMM-first forward: the final layer's vertex-completing
	// redistribution is paid inside the last fwd section.
	cfg.ConfigID = 10
	CheckServeMatchesModel(t, prob, cfg, 4, ts)
}

func TestServeMatchesModelRA(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	cfg.RA = 2 // partial replication: ragged column-group allgathers
	CheckServeMatchesModel(t, prob, cfg, 4, ts)
}

func TestServeMatchesModelTopology(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	sp, err := topo.ParseSpec("2x2:nvlink,ib")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = sp.MustTopology(4)
	r := CheckServeMatchesModel(t, prob, cfg, 4, ts)
	if r.TierBytes[topo.TierInter] == 0 {
		t.Fatal("a 2x2 topology at P=4 must move inter-node bytes")
	}
}

func TestServeMatchesModelLayerStaleness(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	// Refresh layer 1 every 4 microbatches, layer 2 every 2: partial
	// refreshes re-run only the stale tail of the schedule, and the
	// meters must still equal the per-section closed forms exactly.
	cfg.LayerStaleness = []int{4, 2}
	cfg.Staleness = 3
	CheckServeMatchesModel(t, prob, cfg, 4, ts)
}

func TestServeMatchesModelP1(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	r := CheckServeMatchesModel(t, prob, cfg, 1, ts)
	if r.BytesTotal != 0 {
		t.Fatalf("single-device serving moved %d bytes; all answers are local", r.BytesTotal)
	}
}

// The serving engine's lifecycle — start, serve under load, drain,
// shut down — must leave no goroutine behind: the fabric's ranks and
// the admission queue's worker all exit when the session's Serve call
// returns.
func TestServeLifecycleNoGoroutineLeak(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	NoGoroutineLeak(t, func() {
		s := serve.NewSession(prob, cfg)
		s.Serve(4, ts.Generate(prob.N()))
		if s.Report().Queries != ts.Queries {
			t.Errorf("served %d queries, want %d", s.Report().Queries, ts.Queries)
		}
	})
}

// An empty arrival stream must neither deadlock nor leak: Serve
// returns immediately and the admission queue (exercised directly)
// closes its output.
func TestServeEmptyStreamNoDeadlock(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, _ := serveFixture()
	NoGoroutineLeak(t, func() {
		NoDeadlock(t, 5*time.Second, func() {
			s := serve.NewSession(prob, cfg)
			s.Serve(4, nil)
			if got := s.Report().Queries; got != 0 {
				t.Errorf("empty stream served %d queries", got)
			}
		})
	})
}

// Graceful degradation: during an elastic re-formation window the tier
// answers from its store with a staleness flag instead of erroring,
// defers what it cannot answer, and the deferred queries resume
// normally — at a different world size — once the fabric is back.
func TestServeDegradedWindow(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	queries := ts.Generate(prob.N())
	cut := len(queries) / 2
	s := serve.NewSession(prob, cfg)
	s.Serve(4, queries[:cut])
	preMeter := s.Metered()
	preWitness := s.HitMiss()

	// The world goes down: the second half of the stream hits the
	// degraded path.
	dr := s.ServeDegraded(queries[cut:])
	if dr.Served == 0 {
		t.Fatal("Zipf stream re-queries served vertices; the store must answer some stale")
	}
	if dr.Deferred == nil {
		t.Fatal("fresh vertices must be deferred, not dropped")
	}
	if dr.Served+len(dr.Deferred) != len(queries[cut:]) {
		t.Fatalf("degraded window lost queries: %d + %d != %d", dr.Served, len(dr.Deferred), len(queries[cut:]))
	}
	for _, a := range dr.Answers {
		if !a.Stale {
			t.Fatalf("degraded answer for vertex %d not flagged stale", a.Vertex)
		}
		if !reflect.DeepEqual(a.Embedding, s.Answer(a.Vertex)) {
			t.Fatalf("stale answer for vertex %d diverges from the store", a.Vertex)
		}
	}
	if s.Metered() != preMeter {
		t.Fatal("degraded path moved fabric bytes")
	}
	if s.HitMiss() != preWitness {
		t.Fatal("degraded path perturbed the cache determinism witness")
	}
	r := s.Report()
	if r.StaleServed != dr.Served || r.Deferred != len(dr.Deferred) {
		t.Fatalf("report tallies %d/%d, want %d/%d", r.StaleServed, r.Deferred, dr.Served, len(dr.Deferred))
	}

	// The world re-forms smaller; deferred queries replay through the
	// normal path and every one must now have an answer.
	s.Serve(3, dr.Deferred)
	for _, q := range dr.Deferred {
		if s.Answer(q.Vertex) == nil {
			t.Fatalf("deferred vertex %d still unanswered after resumption", q.Vertex)
		}
	}
	if s.Report().Queries != cut+len(dr.Deferred) {
		t.Fatalf("normal-path query count %d, want %d", s.Report().Queries, cut+len(dr.Deferred))
	}
}

// Two sessions over the identical seed and arrival trace must produce
// byte-identical hit/miss sequences and identical reports — the
// serving tier is bit-reproducible.
func TestServeDeterminism(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	queries := ts.Generate(prob.N())
	run := func() (string, serve.Report) {
		s := serve.NewSession(prob, cfg)
		s.Serve(4, queries)
		return s.HitMiss(), s.Report()
	}
	h1, r1 := run()
	h2, r2 := run()
	if h1 != h2 {
		t.Fatal("hit/miss sequences differ between identical runs")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports differ between identical runs:\n%+v\n%+v", r1, r2)
	}
}

// Elastic re-formation: serving the same stream split across two
// worlds (P=2 then P=4) keeps the hit/miss sequence byte-identical to
// the unsplit run — the cache carries over; only the engines are
// rebuilt — and stays deterministic run to run.
func TestServeElasticDeterminism(t *testing.T) {
	prob := DefaultProblem(1, 96, 16, 4)
	cfg, ts := serveFixture()
	queries := ts.Generate(prob.N())
	half := len(queries) / 2

	elastic := func() (string, serve.Report) {
		s := serve.NewSession(prob, cfg)
		s.Serve(2, queries[:half])
		s.Serve(4, queries[half:])
		return s.HitMiss(), s.Report()
	}
	h1, r1 := elastic()
	h2, r2 := elastic()
	if h1 != h2 {
		t.Fatal("elastic hit/miss sequences differ between identical runs")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("elastic reports differ between identical runs:\n%+v\n%+v", r1, r2)
	}

	plain := serve.NewSession(prob, cfg)
	plain.Serve(4, queries)
	if plain.HitMiss() != h1 {
		t.Fatal("hit/miss sequence changed across world re-formation; it must depend only on the stream and cache policy")
	}
}
