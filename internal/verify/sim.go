package verify

import (
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
)

// CheckSimMatchesFabric is the discrete-event backend's differential
// pin: it trains the same problem on a live fabric — sequential
// interpreter and overlap DAG executor — and replays it on the sim
// engine, asserting bit-identical per-device clocks, per-device
// communication and compute time accumulators, and the complete meter
// matrix (per-kind volume, side-channel volume, call counts, and both
// link-tier splits), with no tolerance anywhere. The fabric legs run
// bare epoch loops (no epoch barriers), which is what the sim's
// EpochBarriers=0 protocol reproduces.
//
// Options must not request accuracy evaluation (EvalMask): its
// all-reduce is outside the epoch schedule the sim replays.
func CheckSimMatchesFabric(t testing.TB, prob *core.Problem, p, epochs int, o core.Options) {
	t.Helper()
	if o.EvalMask != nil {
		panic("verify: CheckSimMatchesFabric with EvalMask")
	}
	sched := scheduleFor(prob, p, o)
	dag := plan.MustBuildDAG(sched)
	ra := o.RA
	if ra == 0 {
		ra = p
	}
	cen := core.PanelCensus(prob, p, ra)
	for _, overlap := range []bool{false, true} {
		mode := "sequential"
		if overlap {
			mode = "overlap"
		}
		live := trainOverlapMode(p, prob, o, epochs, overlap)
		res := sim.MustRun(sim.Config{
			DAG: dag, Census: cen, HW: hw.A6000(), Topology: o.Topology,
			Epochs: epochs, Overlap: overlap,
		})
		for r := 0; r < p; r++ {
			if res.Clocks[r] != live.clocks[r] {
				t.Fatalf("%s rank %d: sim clock %.17g != live %.17g (Δ=%g)",
					mode, r, res.Clocks[r], live.clocks[r], res.Clocks[r]-live.clocks[r])
			}
			if res.CommTime[r] != live.commT[r] {
				t.Fatalf("%s rank %d: sim comm time %.17g != live %.17g (Δ=%g)",
					mode, r, res.CommTime[r], live.commT[r], res.CommTime[r]-live.commT[r])
			}
			if res.ComputeTime[r] != live.compT[r] {
				t.Fatalf("%s rank %d: sim compute time %.17g != live %.17g (Δ=%g)",
					mode, r, res.ComputeTime[r], live.compT[r], res.ComputeTime[r]-live.compT[r])
			}
		}
		for _, k := range collectiveKinds {
			if g, w := res.Meters.Volume[k], live.fab.Volume(k); g != w {
				t.Fatalf("%s %v volume: sim %d bytes != live %d", mode, k, g, w)
			}
			if g, w := res.Meters.SideVolume[k], live.fab.SideVolume(k); g != w {
				t.Fatalf("%s %v side volume: sim %d bytes != live %d", mode, k, g, w)
			}
			if g, w := res.Meters.Calls[k], live.fab.Calls(k); g != w {
				t.Fatalf("%s %v calls: sim %d != live %d", mode, k, g, w)
			}
			for tier := 0; tier < 2; tier++ {
				if g, w := res.Meters.TierVolume[tier][k], live.fab.TierVolume(k, tier); g != w {
					t.Fatalf("%s %v tier %d volume: sim %d bytes != live %d", mode, k, tier, g, w)
				}
				if g, w := res.Meters.SideTierVolume[tier][k], live.fab.SideTierVolume(k, tier); g != w {
					t.Fatalf("%s %v tier %d side volume: sim %d bytes != live %d", mode, k, tier, g, w)
				}
			}
		}
	}
}
