package verify

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

// TestOverlapEquivalenceSweep is the overlap differential suite: all 16
// Table IV orderings × P ∈ {1,2,4,8} × {flat, 8x4:nvlink,ib}, each
// pinned for bit-identical numerics, exactly equal meters, and live
// clocks equal to the DAG pricer on both executor paths.
func TestOverlapEquivalenceSweep(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	dims := []int{16, 12, 8}
	for _, spec := range []string{"", "8x4:nvlink,ib"} {
		var ts topo.Spec
		if spec != "" {
			var err error
			if ts, err = topo.ParseSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
		for cfg := 0; cfg < costmodel.NumConfigs(len(dims)-1); cfg++ {
			for _, p := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("flat/cfg%02d/P%d", cfg, p)
				if spec != "" {
					name = fmt.Sprintf("%s/cfg%02d/P%d", spec, cfg, p)
				}
				cfg, p := cfg, p
				t.Run(name, func(t *testing.T) {
					o := DiffSpec{Dims: dims}.opts(cfg)
					if spec != "" {
						o.Topology = ts.MustTopology(p)
					}
					cost := CheckOverlapEquivalence(t, prob, p, 2, o)
					if cost.Makespan > cost.SeqTime {
						t.Fatalf("critical path %v exceeds sequential %v", cost.Makespan, cost.SeqTime)
					}
				})
			}
		}
	}
}

// TestOverlapEquivalenceSAGE extends the pin to the two-weight
// GraphSAGE form and reduced adjacency replication, which exercise
// KAdd/KMemWrite and the column-group allgather resource.
func TestOverlapEquivalenceSAGE(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	o := DiffSpec{Dims: []int{16, 12, 8}}.opts(5)
	o.SAGE = true
	o.RA = 2
	CheckOverlapEquivalence(t, prob, 4, 2, o)
}

// TestOverlapRace drives the overlap executor's concurrent dispatcher
// through a chaos matrix under the race detector: explicit crash and
// straggler schedules plus the CI seed set. Crashes during overlapped
// collectives must surface a typed *comm.FaultError on every survivor
// — never a deadlock, never a goroutine leak.
func TestOverlapRace(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	dims := []int{16, 12, 8}
	o := DiffSpec{Dims: dims}.opts(3)

	t.Run("crash", func(t *testing.T) {
		for _, p := range []int{4, 8} {
			p := p
			t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
				sched, err := fault.ParseSchedule("crash@rank1:epoch1")
				if err != nil {
					t.Fatal(err)
				}
				var res []OverlapChaosResult
				NoGoroutineLeak(t, func() {
					res = RunOverlapChaos(p, prob, o, 3, sched, 1)
				})
				for r, rr := range res {
					if r == 1 {
						if !rr.Killed {
							t.Fatalf("rank 1 not killed: %+v", rr)
						}
						continue
					}
					var fe *comm.FaultError
					if rr.Err == nil || !errors.As(rr.Err, &fe) {
						t.Fatalf("survivor rank %d: want *FaultError, got %v", r, rr.Err)
					}
					if !errors.Is(rr.Err, comm.ErrPeerDead) {
						t.Fatalf("survivor rank %d: want ErrPeerDead cause, got %v", r, rr.Err)
					}
					if len(rr.Losses) != 1 {
						t.Fatalf("survivor rank %d completed %d epochs before the crash, want 1", r, len(rr.Losses))
					}
				}
			})
		}
	})

	t.Run("straggler", func(t *testing.T) {
		// A straggler reorders nothing: losses stay bit-identical to an
		// undisturbed overlap run, only clocks stretch.
		sched, err := fault.ParseSchedule("slow@rank1:3x")
		if err != nil {
			t.Fatal(err)
		}
		clean := trainOverlapMode(4, prob, o, 3, true)
		var res []OverlapChaosResult
		NoGoroutineLeak(t, func() {
			res = RunOverlapChaos(4, prob, o, 3, sched, 1)
		})
		for r, rr := range res {
			if rr.Err != nil || rr.Killed {
				t.Fatalf("rank %d failed under a pure straggler schedule: %+v", r, rr)
			}
			for ep, want := range clean.losses[r] {
				if rr.Losses[ep] != want {
					t.Fatalf("rank %d epoch %d: straggled loss %v != clean %v", r, ep, rr.Losses[ep], want)
				}
			}
		}
	})

	t.Run("seeds", func(t *testing.T) {
		for _, seed := range []int64{1, 7, 1337} {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				const p, epochs = 8, 3
				sched := fault.RandomSchedule(seed, p, epochs)
				t.Logf("chaos: %s", sched)
				var res []OverlapChaosResult
				NoGoroutineLeak(t, func() {
					res = RunOverlapChaos(p, prob, o, epochs, sched, seed)
				})
				finished := 0
				for r, rr := range res {
					if rr.Killed && rr.Err != nil {
						t.Fatalf("rank %d both killed and errored: %+v", r, rr)
					}
					if !rr.Killed && rr.Err == nil {
						finished++
					}
				}
				// Every random schedule contains a crash; whether it fires
				// or a transient drop aborts the world first, the run must
				// not complete cleanly everywhere.
				if finished == p {
					t.Fatalf("all %d ranks completed despite chaos schedule %s", p, sched)
				}
			})
		}
	})
}

// TestOverlapConservation runs traced overlap trainings — flat and
// hierarchical — through the conservation checker: per-resource tracks
// must each be monotone, every collective round complete and
// consistent, traced bytes equal the meters, and each device clock
// equal its latest event end across tracks.
func TestOverlapConservation(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	for _, spec := range []string{"", "8x4:nvlink,ib"} {
		spec := spec
		name := "flat"
		if spec != "" {
			name = spec
		}
		t.Run(name, func(t *testing.T) {
			o := DiffSpec{Dims: []int{16, 12, 8}}.opts(6)
			p := 4
			if spec != "" {
				ts, err := topo.ParseSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				p = 8
				o.Topology = ts.MustTopology(p)
			}
			o.Tracer = trace.NewTracer(1 << 16)
			run := trainOverlapMode(p, prob, o, 2, true)
			sessions := o.Tracer.Sessions()
			if len(sessions) == 0 {
				t.Fatal("no trace sessions recorded")
			}
			for _, s := range sessions {
				CheckFabricSession(t, run.fab, s)
			}
		})
	}
}

// TestOverlapTraceDeterministic runs the same overlap training twice
// with tracing on and asserts byte-identical Chrome exports: concurrent
// lane dispatch must not leak scheduler nondeterminism into the
// recorded timeline (per-track event order is deterministic because
// each lane's ops execute in schedule order at simulated clocks).
func TestOverlapTraceDeterministic(t *testing.T) {
	prob := DefaultProblem(3, 64, 16, 4)
	o := DiffSpec{Dims: []int{16, 12, 8}}.opts(10)
	run := func() []byte {
		oo := o
		oo.Tracer = trace.NewTracer(1 << 16)
		trainOverlapMode(4, prob, oo, 2, true)
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, oo.Tracer); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("identical overlap runs produced different traces (%d vs %d bytes, divergence at %d: %s)",
			len(a), len(b), i, contextAround(a, b, i))
	}
}
