// Package verify is the repo-wide correctness oracle: reusable,
// table-driven checks that distributed GNN-RDM training is numerically
// equivalent to the single-device reference, that metered communication
// obeys conservation laws and matches the analytic cost model
// byte-for-byte, and that training commutes with the metamorphic
// transformations (vertex permutation, feature scaling, redistribution
// round trips) it must be invariant under.
//
// The package is imported by the test suites of core, dist, comm,
// costmodel, baselines, and saint. Performance PRs must keep these
// checks green: GNN-RDM's claim (§I) is that redistribution changes
// where bytes move, never what is computed.
//
// Tolerances are float32 facts, not slack: distributed execution
// re-associates reductions (row-panel partial sums, allreduce trees), so
// bit equality is only demanded where the arithmetic is genuinely
// order-identical (redistribution, power-of-two scaling); everything
// else gets the documented bound below.
package verify

const (
	// LossTol bounds the per-epoch training-loss gap to the reference.
	// Loss is a float64 mean of per-vertex float32 cross-entropies; the
	// only float32 divergence between orderings is reduction
	// re-association inside layer kernels, observed ≤ 2e-5 on the test
	// problems. 1e-4 is the repo-wide bound (also used by core's
	// seed tests).
	LossTol = 1e-4

	// LogitsTol bounds element-wise final-logit differences. Logits see
	// L layers of re-associated float32 matmul sums plus K epochs of
	// Adam rescaling (which amplifies input noise through rsqrt), so the
	// bound is looser than LossTol.
	LogitsTol = 1e-3

	// WeightTol bounds element-wise final-weight differences. Weight
	// gradients are Hᵀ(AG) sums over the vertex dimension — the same
	// re-association magnitude as logits.
	WeightTol = 1e-3

	// AccTol bounds the accuracy gap to the reference. Accuracy is a
	// discrete ratio: a logit pair within LogitsTol of a tie can argmax
	// differently, flipping one vertex. 0.05 admits up to ~3 flips on
	// the 64-vertex problems these suites train; anything larger means
	// the models genuinely diverged.
	AccTol = 0.05

	// PermLossTol / PermLogitsTol bound divergence between a run and its
	// vertex-permuted twin. Permutation reorders every N-length float32
	// reduction (SpMM row sums, Hᵀ(AG) gradient sums) in both passes of
	// every epoch, compounding through Adam, so the bounds are one step
	// looser than the same-problem config comparisons.
	PermLossTol   = 5e-4
	PermLogitsTol = 5e-3
)
