package verify

import (
	"fmt"
	"math"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/topo"
)

// DiffSpec is a table-driven differential-equivalence sweep: train every
// (config, P, R_A) combination and assert the result agrees with the
// single-device reference within the package tolerances.
type DiffSpec struct {
	Problem *core.Problem
	Dims    []int // f_0..f_L
	Epochs  int
	Ps      []int // fabric sizes; defaults to {1, 2, 4, 8}
	// Configs are Table IV ordering IDs; nil means all 2^{2L}.
	Configs []int
	// RAs returns the replication factors to sweep for a fabric size;
	// nil means full replication only ({p}).
	RAs func(p int) []int
	// Seed and LR default to 7 and 0.01 (the repo's standard test
	// hyperparameters).
	Seed int64
	LR   float64
	// TopoSpec, when non-empty, runs every distributed training on this
	// interconnect spec (internal/topo), instantiated per fabric size.
	// Results must still match the flat reference exactly: topology
	// routing changes clocks and meters, never numerics. The spec must
	// cover the largest P in the sweep.
	TopoSpec string
}

func (s DiffSpec) opts(cfg int) core.Options {
	seed := s.Seed
	if seed == 0 {
		seed = 7
	}
	lr := s.LR
	if lr == 0 {
		lr = 0.01
	}
	return core.Options{
		Dims:             s.Dims,
		Config:           costmodel.ConfigFromID(cfg, len(s.Dims)-1),
		Memoize:          true,
		ComputeInputGrad: true,
		LR:               lr,
		Seed:             seed,
	}
}

// RunDifferential executes the sweep, one subtest per combination. The
// reference is trained once; each distributed run must match it on every
// epoch's loss, the final logits, every final weight matrix, and the
// all-vertex accuracy.
func RunDifferential(t *testing.T, spec DiffSpec) {
	t.Helper()
	ps := spec.Ps
	if ps == nil {
		ps = []int{1, 2, 4, 8}
	}
	configs := spec.Configs
	if configs == nil {
		nc := costmodel.NumConfigs(len(spec.Dims) - 1)
		configs = make([]int, nc)
		for i := range configs {
			configs[i] = i
		}
	}
	ras := spec.RAs
	if ras == nil {
		ras = func(p int) []int { return []int{p} }
	}
	var ts topo.Spec
	if spec.TopoSpec != "" {
		var err error
		if ts, err = topo.ParseSpec(spec.TopoSpec); err != nil {
			t.Fatalf("bad TopoSpec: %v", err)
		}
	}
	ref := core.ReferenceTrain(spec.Problem, spec.opts(0), spec.Epochs)
	refAcc := nn.Accuracy(ref.Logits, spec.Problem.Labels, nil)

	for _, cfg := range configs {
		for _, p := range ps {
			for _, ra := range ras(p) {
				cfg, p, ra := cfg, p, ra
				t.Run(fmt.Sprintf("cfg%02d/P%d/RA%d", cfg, p, ra), func(t *testing.T) {
					o := spec.opts(cfg)
					o.RA = ra
					if spec.TopoSpec != "" {
						o.Topology = ts.MustTopology(p)
					}
					res := core.Train(p, hw.A6000(), spec.Problem, o, spec.Epochs)
					for ep, want := range ref.Losses {
						if d := math.Abs(res.Epochs[ep].Loss - want); d > LossTol {
							t.Fatalf("epoch %d loss %v, reference %v (|Δ|=%.3g > %g)",
								ep, res.Epochs[ep].Loss, want, d, LossTol)
						}
					}
					if d := tensor.MaxAbsDiff(res.Logits, ref.Logits); d > LogitsTol {
						t.Fatalf("final logits diverge from reference: max|Δ|=%.3g > %g", d, LogitsTol)
					}
					if len(res.Weights) != len(ref.Weights) {
						t.Fatalf("weight group count %d, reference %d", len(res.Weights), len(ref.Weights))
					}
					for i := range res.Weights {
						if d := tensor.MaxAbsDiff(res.Weights[i], ref.Weights[i]); d > WeightTol {
							t.Fatalf("weight %d diverges from reference: max|Δ|=%.3g > %g", i, d, WeightTol)
						}
					}
					acc := res.Accuracy(spec.Problem.Labels, nil)
					if d := math.Abs(acc - refAcc); d > AccTol {
						t.Fatalf("accuracy %v, reference %v (|Δ|=%.3g > %g)", acc, refAcc, d, AccTol)
					}
				})
			}
		}
	}
}

// TrainFabric runs epochs of engine training on a fresh fabric and
// returns the fabric for meter/trace inspection (core.Train does not
// expose its fabric). When tracing is requested via opts.Tracer the
// session is labelled opts.TraceLabel.
func TrainFabric(p int, prob *core.Problem, opts core.Options, epochs int) *comm.Fabric {
	if opts.RA == 0 {
		opts.RA = p
	}
	fab := comm.NewFabric(p, hw.A6000())
	if opts.Topology != nil {
		fab.SetTopology(opts.Topology)
	}
	if opts.Tracer != nil {
		label := opts.TraceLabel
		if label == "" {
			label = "verify"
		}
		fab.SetTracer(opts.Tracer, label)
	}
	fab.Run(func(d *comm.Device) {
		eng := core.NewEngine(d, prob, opts)
		for ep := 0; ep < epochs; ep++ {
			eng.Epoch()
		}
	})
	return fab
}

// CheckVolumeMatchesModel trains one epoch and asserts the metered RDM
// volume — all-to-all redistributions plus column-group allgathers —
// equals the §IV cost-model prediction byte-for-byte. Mask
// redistribution traffic (which the model deliberately omits) rides the
// fabric's side channel and is therefore excluded from the primary
// meters automatically; it is returned for callers that want to
// reconcile total traffic.
func CheckVolumeMatchesModel(t testing.TB, prob *core.Problem, dims []int, p, ra, cfg int) (side int64) {
	t.Helper()
	o := DiffSpec{Dims: dims}.opts(cfg)
	o.RA = ra
	fab := TrainFabric(p, prob, o, 1)
	got := fab.Volume(hw.OpAllToAll) + fab.Volume(hw.OpAllGather)
	net := costmodel.Network{Dims: dims, N: int64(prob.N()), NNZ: prob.A.NNZ(), P: p, RA: ra}
	want := costmodel.EvaluateEngine(net, costmodel.ConfigFromID(cfg, len(dims)-1)).CommVolumeBytes()
	if got != want {
		t.Fatalf("P=%d RA=%d cfg=%d: metered RDM volume %d bytes, model predicts %d (Δ=%d)",
			p, ra, cfg, got, want, got-want)
	}
	// The compiled schedule is a third independent accounting of the same
	// epoch; its per-op prices must sum to the identical figure.
	planned := scheduleFor(prob, p, o).Price(prob.A.NNZ(), hw.A6000()).RDMBytes()
	if planned != want {
		t.Fatalf("P=%d RA=%d cfg=%d: schedule prices %d RDM bytes, model predicts %d (Δ=%d)",
			p, ra, cfg, planned, want, planned-want)
	}
	return fab.TotalSideVolume()
}

// scheduleFor compiles the optimized op schedule NewEngine would build
// for these options (the compile is deterministic, so this reproduces
// the engines' schedule without reaching into a fabric).
func scheduleFor(prob *core.Problem, p int, o core.Options) *plan.Schedule {
	ra := o.RA
	if ra == 0 {
		ra = p
	}
	cfg := o.Config
	if len(cfg.Fwd) == 0 {
		cfg = costmodel.ConfigFromID(0, len(o.Dims)-1)
	}
	return plan.Compile(plan.Spec{
		N: prob.N(), Dims: o.Dims, Config: cfg, P: p, RA: ra,
		SAGE: o.SAGE, Memoize: o.Memoize, InputGrad: o.ComputeInputGrad,
		Live: o.Live, SparseSeed: o.SparseSeed,
	}).Optimize()
}

// CheckScheduleMatchesMeters trains one epoch under arbitrary options —
// including mixed per-layer orderings and GraphSAGE, which the closed-form
// §IV model does not cover — and reconciles the fabric's meters against
// the compiled schedule's per-op prices exactly: RDM volume (all-to-all +
// allgather), gradient/loss all-reduce volume, and side-channel mask
// bytes. Options must not request per-epoch accuracy evaluation
// (EvalMask), whose all-reduce is outside the epoch schedule.
func CheckScheduleMatchesMeters(t testing.TB, prob *core.Problem, p int, o core.Options) {
	t.Helper()
	if o.EvalMask != nil {
		panic("verify: CheckScheduleMatchesMeters with EvalMask")
	}
	fab := TrainFabric(p, prob, o, 1)
	c := scheduleFor(prob, p, o).Price(prob.A.NNZ(), hw.A6000())
	if got := fab.Volume(hw.OpAllToAll) + fab.Volume(hw.OpAllGather); got != c.RDMBytes() {
		t.Fatalf("P=%d: metered RDM volume %d bytes, schedule prices %d (Δ=%d)",
			p, got, c.RDMBytes(), got-c.RDMBytes())
	}
	if got := fab.Volume(hw.OpAllReduce); got != c.AllReduce {
		t.Fatalf("P=%d: metered all-reduce volume %d bytes, schedule prices %d (Δ=%d)",
			p, got, c.AllReduce, got-c.AllReduce)
	}
	if got := fab.TotalSideVolume(); got != c.Side {
		t.Fatalf("P=%d: metered side-channel volume %d bytes, schedule prices %d (Δ=%d)",
			p, got, c.Side, got-c.Side)
	}
}
