package verify

import (
	"math"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/serve"
)

// CheckServeMatchesModel runs one serving session over a generated
// query stream and asserts the tier's two exactness contracts:
//
//  1. Every byte the serving path moved — staleness refreshes through
//     the compiled inference schedule plus per-microbatch row gathers —
//     equals the closed-form prediction, per collective kind and (when
//     a topology is set) per link tier, to the byte. Nothing but
//     all-to-all and allgather traffic may appear: serving never
//     all-reduces, and the side channel stays silent.
//  2. Every served answer matches the single-device uncached reference
//     engine within LogitsTol (float32 reduction-order slack; the
//     distributed forward is the only source of divergence — the cache
//     stores exact gathered rows).
//
// With a non-zero cache it also demands a non-zero hit rate: a stream
// with repeats that never hits means the cache is not actually in the
// serving path. Returns the session report for further assertions.
func CheckServeMatchesModel(t testing.TB, prob *core.Problem, cfg serve.Config, p int, ts serve.TrafficSpec) serve.Report {
	t.Helper()
	queries := ts.Generate(prob.N())
	s := serve.NewSession(prob, cfg)
	s.Serve(p, queries)
	r := s.Report()

	m, pr := s.Metered(), s.Predicted()
	if m.AllToAll != pr.AllToAll {
		t.Fatalf("serve: metered %d all-to-all bytes, model predicts %d", m.AllToAll, pr.AllToAll)
	}
	if m.AllGather != pr.AllGather {
		t.Fatalf("serve: metered %d allgather bytes, model predicts %d", m.AllGather, pr.AllGather)
	}
	if m.AllReduce != 0 || pr.AllReduce != 0 {
		t.Fatalf("serve: inference must not all-reduce (metered %d, predicted %d)", m.AllReduce, pr.AllReduce)
	}
	if m.Other != 0 {
		t.Fatalf("serve: unexpected %d bytes outside all-to-all/allgather", m.Other)
	}
	if m.Side != 0 || pr.Side != 0 {
		t.Fatalf("serve: side channel must stay silent (metered %d, predicted %d)", m.Side, pr.Side)
	}
	for tier := range m.Tier {
		if m.Tier[tier] != pr.Tier[tier] {
			t.Fatalf("serve: tier %d metered %d bytes, model predicts %d", tier, m.Tier[tier], pr.Tier[tier])
		}
	}

	ref := serve.Reference(prob, cfg, distinctVertices(queries))
	for v, want := range ref {
		got := s.Answer(v)
		if got == nil {
			t.Fatalf("serve: vertex %d was queried but has no served answer", v)
		}
		if len(got) != len(want) {
			t.Fatalf("serve: vertex %d answer has %d columns, reference %d", v, len(got), len(want))
		}
		for j := range got {
			if d := math.Abs(float64(got[j]) - float64(want[j])); d > LogitsTol {
				t.Fatalf("serve: vertex %d col %d: served %v, reference %v (|diff| %v > %v)",
					v, j, got[j], want[j], d, LogitsTol)
			}
		}
	}

	if cfg.CacheCap > 0 && r.HitRate <= 0 {
		t.Fatalf("serve: cache enabled (cap %d) but hit rate is zero over %d queries", cfg.CacheCap, r.Queries)
	}
	return r
}

func distinctVertices(queries []serve.Query) []int32 {
	seen := make(map[int32]bool, len(queries))
	var out []int32
	for _, q := range queries {
		if !seen[q.Vertex] {
			seen[q.Vertex] = true
			out = append(out, q.Vertex)
		}
	}
	return out
}
