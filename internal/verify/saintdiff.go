package verify

import (
	"fmt"
	"math"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/saint"
)

// CheckSAINTDifferential asserts SAINT-RDM is P-invariant: every device
// count must walk the same accuracy-versus-updates curve as the
// single-device run, because subgraphs are drawn host-side from a shared
// seed and every subgraph's update runs across all P devices (§V-C).
//
// prob must be the RAW (unnormalized) problem — TrainSAINTRDM applies
// GCN normalization internally.
func CheckSAINTDifferential(t *testing.T, prob *core.Problem, testMask []bool, opts saint.Options, epochs int, ps []int) {
	t.Helper()
	if ps == nil {
		ps = []int{2, 4}
	}
	ref := saint.TrainSAINTRDM(1, hw.A6000(), prob, testMask, opts, epochs)
	for _, p := range ps {
		p := p
		t.Run(fmt.Sprintf("P%d", p), func(t *testing.T) {
			cur := saint.TrainSAINTRDM(p, hw.A6000(), prob, testMask, opts, epochs)
			if len(cur.Points) != len(ref.Points) {
				t.Fatalf("curve has %d points, single-device reference %d", len(cur.Points), len(ref.Points))
			}
			for i, want := range ref.Points {
				got := cur.Points[i]
				if got.Updates != want.Updates {
					t.Fatalf("point %d: %d updates, reference %d — P must not change the update schedule",
						i, got.Updates, want.Updates)
				}
				if d := math.Abs(got.TrainLoss - want.TrainLoss); d > LossTol {
					t.Fatalf("point %d: train loss %v, reference %v (|Δ|=%.3g > %g)",
						i, got.TrainLoss, want.TrainLoss, d, LossTol)
				}
				if d := math.Abs(got.TestAcc - want.TestAcc); d > AccTol {
					t.Fatalf("point %d: test acc %v, reference %v (|Δ|=%.3g > %g)",
						i, got.TestAcc, want.TestAcc, d, AccTol)
				}
			}
		})
	}
}
