package verify

import (
	"errors"
	"testing"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/tensor"
)

// This file pins the overlap executor (core.Options.Overlap) against
// the sequential interpreter it forked from, on three axes at once:
//
//  1. Numerics — bit-identical: every epoch's loss, every rank's final
//     logits tile, and every weight matrix compare with float32 ==, no
//     tolerance. The DAG's write-after-read edges plus the fabric's
//     group-position reduction order make concurrent dispatch
//     arithmetically invisible.
//  2. Meters — exactly equal: per-kind collective volumes, call counts,
//     side-channel bytes, and per-tier splits. Overlap reorders time,
//     never traffic.
//  3. Clocks — the live overlapped device clocks equal the DAG pricer's
//     closed-form critical path (plan.PriceDAGEpochs) and the live
//     sequential clocks equal its sequential replay, exactly; overlap
//     never exceeds sequential.

// collectiveKinds enumerates every metered collective kind.
var collectiveKinds = []hw.CollectiveKind{
	hw.OpBroadcast, hw.OpAllGather, hw.OpAllReduce,
	hw.OpAllToAll, hw.OpSendRecv, hw.OpReduceScatter,
}

// overlapRun captures one training run's observables: per-rank epoch
// losses, final logits tiles and weights, device clocks, and the fabric
// with its meters.
type overlapRun struct {
	fab     *comm.Fabric
	losses  [][]float64
	logits  []*tensor.Dense
	weights [][]*tensor.Dense
	clocks  []float64
	commT   []float64
	compT   []float64
}

// trainOverlapMode trains epochs on a fresh fabric with the given
// executor mode and captures the observables.
func trainOverlapMode(p int, prob *core.Problem, o core.Options, epochs int, overlap bool) overlapRun {
	o.Overlap = overlap
	o.PinExecutor = true // the sequential leg must survive GNNRDM_OVERLAP=1
	run := overlapRun{
		losses:  make([][]float64, p),
		logits:  make([]*tensor.Dense, p),
		weights: make([][]*tensor.Dense, p),
		clocks:  make([]float64, p),
		commT:   make([]float64, p),
		compT:   make([]float64, p),
	}
	fab := comm.NewFabric(p, hw.A6000())
	if o.Topology != nil {
		fab.SetTopology(o.Topology)
	}
	if o.Tracer != nil {
		label := o.TraceLabel
		if label == "" {
			label = "overlap"
		}
		fab.SetTracer(o.Tracer, label)
	}
	fab.Run(func(d *comm.Device) {
		eng := core.NewEngine(d, prob, o)
		for ep := 0; ep < epochs; ep++ {
			run.losses[d.Rank] = append(run.losses[d.Rank], eng.Epoch())
		}
		run.logits[d.Rank] = eng.LastLogits().Local
		run.weights[d.Rank] = eng.Weights()
		run.clocks[d.Rank] = d.Clock()
		run.commT[d.Rank] = d.CommTime()
		run.compT[d.Rank] = d.ComputeTime()
	})
	run.fab = fab
	return run
}

// equalDense reports bit-identity of two float32 matrices.
func equalDense(a, b *tensor.Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// CheckOverlapEquivalence trains the same problem twice — sequential
// interpreter and overlap DAG executor — and asserts bit-identical
// numerics, exactly equal meters, and live clocks equal to the DAG
// pricer's closed-form values on both paths, with overlap never slower
// than sequential. Returns the priced cost for callers that want the
// efficiency. Options must not set Overlap (both modes are run) or
// EvalMask (its all-reduce is outside the epoch schedule).
func CheckOverlapEquivalence(t testing.TB, prob *core.Problem, p, epochs int, o core.Options) plan.DAGCost {
	t.Helper()
	if o.EvalMask != nil {
		panic("verify: CheckOverlapEquivalence with EvalMask")
	}
	seq := trainOverlapMode(p, prob, o, epochs, false)
	ovl := trainOverlapMode(p, prob, o, epochs, true)

	for r := 0; r < p; r++ {
		for ep := range seq.losses[r] {
			if ovl.losses[r][ep] != seq.losses[r][ep] {
				t.Fatalf("rank %d epoch %d: overlap loss %v != sequential %v",
					r, ep, ovl.losses[r][ep], seq.losses[r][ep])
			}
		}
		if !equalDense(ovl.logits[r], seq.logits[r]) {
			t.Fatalf("rank %d: overlap logits tile not bit-identical to sequential", r)
		}
		if len(ovl.weights[r]) != len(seq.weights[r]) {
			t.Fatalf("rank %d: weight count %d != %d", r, len(ovl.weights[r]), len(seq.weights[r]))
		}
		for i := range ovl.weights[r] {
			if !equalDense(ovl.weights[r][i], seq.weights[r][i]) {
				t.Fatalf("rank %d: weight %d not bit-identical to sequential", r, i)
			}
		}
	}

	for _, k := range collectiveKinds {
		if g, w := ovl.fab.Volume(k), seq.fab.Volume(k); g != w {
			t.Fatalf("%v volume: overlap %d bytes != sequential %d", k, g, w)
		}
		if g, w := ovl.fab.SideVolume(k), seq.fab.SideVolume(k); g != w {
			t.Fatalf("%v side volume: overlap %d bytes != sequential %d", k, g, w)
		}
		if g, w := ovl.fab.Calls(k), seq.fab.Calls(k); g != w {
			t.Fatalf("%v calls: overlap %d != sequential %d", k, g, w)
		}
		for tier := 0; tier < 2; tier++ {
			if g, w := ovl.fab.TierVolume(k, tier), seq.fab.TierVolume(k, tier); g != w {
				t.Fatalf("%v tier %d volume: overlap %d bytes != sequential %d", k, tier, g, w)
			}
			if g, w := ovl.fab.SideTierVolume(k, tier), seq.fab.SideTierVolume(k, tier); g != w {
				t.Fatalf("%v tier %d side volume: overlap %d bytes != sequential %d", k, tier, g, w)
			}
		}
	}

	dag := plan.MustBuildDAG(scheduleFor(prob, p, o))
	ra := o.RA
	if ra == 0 {
		ra = p
	}
	cen := core.PanelCensus(prob, p, ra)
	cost := dag.PriceDAGEpochs(cen, hw.A6000(), o.Topology, epochs)
	for r := 0; r < p; r++ {
		if ovl.clocks[r] != cost.PerDevice[r] {
			t.Fatalf("rank %d: live overlap clock %.17g != priced critical path %.17g (Δ=%g)",
				r, ovl.clocks[r], cost.PerDevice[r], ovl.clocks[r]-cost.PerDevice[r])
		}
		if seq.clocks[r] != cost.PerDeviceSeq[r] {
			t.Fatalf("rank %d: live sequential clock %.17g != priced sequential %.17g (Δ=%g)",
				r, seq.clocks[r], cost.PerDeviceSeq[r], seq.clocks[r]-cost.PerDeviceSeq[r])
		}
		if ovl.clocks[r] > seq.clocks[r] {
			t.Fatalf("rank %d: overlap clock %v exceeds sequential %v", r, ovl.clocks[r], seq.clocks[r])
		}
	}
	return cost
}

// OverlapChaosResult is one rank's outcome under an injected fault
// schedule: Err is nil for ranks that completed every epoch, the typed
// *comm.FaultError survivors receive when a peer dies mid-collective,
// and Killed is true for the rank(s) the schedule crashed.
type OverlapChaosResult struct {
	Err    error
	Killed bool
	// Losses holds the epochs the rank completed before the run ended.
	Losses []float64
}

// RunOverlapChaos trains with the overlap executor under a fault
// schedule and returns each rank's outcome. Crashed ranks' Killed
// panics are contained by the fabric (their workers' sibling lanes are
// woken by the death broadcast and drain); survivor ranks surface a
// typed *comm.FaultError, which this harness records instead of
// re-panicking — anything that is not fault-class re-raises.
func RunOverlapChaos(p int, prob *core.Problem, o core.Options, epochs int, sched *fault.Schedule, seed int64) []OverlapChaosResult {
	o.Overlap = true
	res := make([]OverlapChaosResult, p)
	fab := comm.NewFabric(p, hw.A6000())
	if o.Topology != nil {
		fab.SetTopology(o.Topology)
	}
	inj := fault.NewInjector(sched, seed, p)
	inj.Arm(fab)
	fab.Run(func(d *comm.Device) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if k, ok := rec.(comm.Killed); ok {
				res[d.Rank].Killed = true
				panic(k) // the fabric contains scheduled crashes
			}
			err, ok := rec.(error)
			var fe *comm.FaultError
			if !ok || !errors.As(err, &fe) {
				panic(rec) // genuine bug, not an injected fault
			}
			res[d.Rank].Err = err
		}()
		eng := core.NewEngine(d, prob, o)
		for ep := 0; ep < epochs; ep++ {
			d.SetFaultEpoch(ep)
			inj.AtEpochStart(d, ep)
			loss := eng.Epoch()
			res[d.Rank].Losses = append(res[d.Rank].Losses, loss)
		}
	})
	return res
}
