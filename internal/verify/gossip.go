package verify

import (
	"fmt"
	"reflect"

	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/member"
)

// CheckGossipConvergence runs one membership detection episode and
// asserts the tentpole invariants of the gossip control plane:
//
//   - the episode converges (every survivor independently holds the
//     identical dead set) within the closed-form epidemic bound
//     costmodel.GossipConvergenceBound(p, suspicionPeriods);
//   - every protocol round's metered bytes (sum of actual encoded
//     message lengths) equal costmodel.GossipRoundBytes applied to that
//     round's message/update census, and the episode totals equal the
//     per-round sums — the meter-equal discipline;
//   - the episode is seed-deterministic: a second run with the same
//     inputs yields a byte-identical event log and census.
//
// It returns the first run's report for further inspection.
func CheckGossipConvergence(p int, dead []int, cfg member.Config) (*member.Report, error) {
	cfg = cfg.WithDefaults()
	rep := member.Detect(p, dead, cfg)
	if !rep.Converged {
		return rep, fmt.Errorf("gossip: P=%d dead=%v seed=%d did not converge within %d rounds",
			p, dead, cfg.Seed, rep.Rounds)
	}
	bound := costmodel.GossipConvergenceBound(p, cfg.SuspicionPeriods)
	if rep.Rounds > bound {
		return rep, fmt.Errorf("gossip: P=%d dead=%v seed=%d converged in %d rounds, epidemic bound is %d",
			p, dead, cfg.Seed, rep.Rounds, bound)
	}
	var msgs, updates int
	var bytes int64
	for _, rc := range rep.PerRound {
		if want := costmodel.GossipRoundBytes(rc.Msgs, rc.Updates); rc.Bytes != want {
			return rep, fmt.Errorf("gossip: P=%d round %d metered %d bytes, cost model prices %d (%d msgs, %d updates)",
				p, rc.Round, rc.Bytes, want, rc.Msgs, rc.Updates)
		}
		msgs += rc.Msgs
		updates += rc.Updates
		bytes += rc.Bytes
	}
	if msgs != rep.Msgs || updates != rep.Updates || bytes != rep.Bytes {
		return rep, fmt.Errorf("gossip: episode totals %d msgs/%d updates/%d bytes drift from per-round sums %d/%d/%d",
			rep.Msgs, rep.Updates, rep.Bytes, msgs, updates, bytes)
	}
	if want := costmodel.GossipDetectLatency(rep.Rounds, cfg.Period); rep.Latency != want {
		return rep, fmt.Errorf("gossip: latency %v != %d rounds at period %v", rep.Latency, rep.Rounds, cfg.Period)
	}
	again := member.Detect(p, dead, cfg)
	if rep.EventLog() != again.EventLog() {
		return rep, fmt.Errorf("gossip: event log not deterministic:\n%s\n%s", rep.EventLog(), again.EventLog())
	}
	if !reflect.DeepEqual(rep.PerRound, again.PerRound) {
		return rep, fmt.Errorf("gossip: per-round census not deterministic at P=%d seed=%d", p, cfg.Seed)
	}
	return rep, nil
}
