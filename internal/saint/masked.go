package saint

import (
	"math/rand"
	"sort"

	"gnnrdm/internal/sparse"
)

// NeighborMaskProvider implements the masked-SpMM sampling path of
// §III-F for samplers that do not build explicit subgraphs: every epoch,
// each vertex keeps at most `fanout` of its neighbors, sampled without
// replacement. The per-row RNG is seeded with (seed, epoch, row), so
// every replica of a row panel generates an identical mask without any
// communication — the paper's shared-seed optimization.
//
// The returned function plugs into core.Options.MaskProvider.
func NeighborMaskProvider(adj *sparse.CSR, fanout int, seed int64) func(epoch, rowLo, rowHi int) [][]int32 {
	if fanout < 1 {
		panic("saint: fanout must be positive")
	}
	return func(epoch, rowLo, rowHi int) [][]int32 {
		masks := make([][]int32, rowHi-rowLo)
		for r := rowLo; r < rowHi; r++ {
			lo, hi := adj.RowPtr[r], adj.RowPtr[r+1]
			deg := int(hi - lo)
			if deg <= fanout {
				masks[r-rowLo] = nil // keep all
				continue
			}
			rng := rand.New(rand.NewSource(rowSeed(seed, epoch, r)))
			// Partial Fisher-Yates over neighbor positions.
			idx := make([]int32, deg)
			for i := range idx {
				idx[i] = int32(i)
			}
			picked := make([]int32, fanout)
			for i := 0; i < fanout; i++ {
				j := i + rng.Intn(deg-i)
				idx[i], idx[j] = idx[j], idx[i]
				picked[i] = adj.ColIdx[lo+int64(idx[i])]
			}
			sort.Slice(picked, func(a, b int) bool { return picked[a] < picked[b] })
			masks[r-rowLo] = picked
		}
		return masks
	}
}

// MaskedAdjacency materializes the sampled operator for one epoch as an
// explicit CSR (the single-address-space reference for testing masked
// distributed training).
func MaskedAdjacency(adj *sparse.CSR, fanout int, seed int64, epoch int) *sparse.CSR {
	provider := NeighborMaskProvider(adj, fanout, seed)
	masks := provider(epoch, 0, adj.Rows)
	out := sparse.NewEmpty(adj.Rows, adj.Cols)
	for r := 0; r < adj.Rows; r++ {
		lo, hi := adj.RowPtr[r], adj.RowPtr[r+1]
		allowed := masks[r]
		k := 0
		for p := lo; p < hi; p++ {
			c := adj.ColIdx[p]
			if allowed != nil {
				for k < len(allowed) && allowed[k] < c {
					k++
				}
				if k >= len(allowed) || allowed[k] != c {
					continue
				}
			}
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, adj.Val[p])
		}
		out.RowPtr[r+1] = int64(len(out.ColIdx))
	}
	return out
}

// rowSeed mixes (seed, epoch, row) into a per-row RNG seed
// (splitmix64-style finalizer).
func rowSeed(seed int64, epoch, row int) int64 {
	z := uint64(seed) ^ uint64(epoch)*0x9E3779B97F4A7C15 ^ uint64(row)*0xBF58476D1CE4E5B9
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}
