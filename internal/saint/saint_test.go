package saint

import (
	"math/rand"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
)

func testProblem(t testing.TB, n, fin, classes int) *core.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	adj, comm := graph.PlantedPartition(rng, n, int64(5*n), classes, 0.85)
	prob := &core.Problem{
		A:      adj, // raw adjacency: samplers need it; trainers normalize
		X:      graph.SynthesizeFeatures(rng, comm, classes, fin, 0.8),
		Labels: comm,
	}
	prob.TrainMask, _, _ = graph.RandomSplit(rng, n, 0.7, 0.1)
	return prob
}

func TestSamplersBasicInvariants(t *testing.T) {
	prob := testProblem(t, 200, 8, 4)
	for _, kind := range []SamplerKind{NodeSampler, EdgeSampler, RandomWalkSampler} {
		s := NewSampler(kind, prob.A, 50, 4)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 10; trial++ {
			nodes := s.Sample(rng)
			if len(nodes) == 0 || len(nodes) > 50 {
				t.Fatalf("%v: bad sample size %d", kind, len(nodes))
			}
			for i := 1; i < len(nodes); i++ {
				if nodes[i-1] >= nodes[i] {
					t.Fatalf("%v: sample not sorted/unique", kind)
				}
			}
			for _, v := range nodes {
				if v < 0 || int(v) >= 200 {
					t.Fatalf("%v: vertex %d out of range", kind, v)
				}
			}
		}
	}
}

func TestNodeSamplerDegreeBias(t *testing.T) {
	// A star graph: the hub must be sampled far more often than leaves.
	rng := rand.New(rand.NewSource(2))
	adj := graph.RMAT(rng, 256, 2048, 0.7, 0.1, 0.1) // heavily skewed
	s := NewSampler(NodeSampler, adj, 32, 0)
	counts := make([]int, 256)
	for trial := 0; trial < 200; trial++ {
		for _, v := range s.Sample(rng) {
			counts[v]++
		}
	}
	deg := adj.RowDegrees()
	maxDegV, minDegV := 0, 0
	for v := range deg {
		if deg[v] > deg[maxDegV] {
			maxDegV = v
		}
		if deg[v] < deg[minDegV] {
			minDegV = v
		}
	}
	if counts[maxDegV] <= counts[minDegV] {
		t.Fatalf("degree bias missing: hub %d sampled %d, leaf %d sampled %d",
			maxDegV, counts[maxDegV], minDegV, counts[minDegV])
	}
}

func TestEstimateNormsCountsPlausible(t *testing.T) {
	prob := testProblem(t, 100, 8, 4)
	s := NewSampler(NodeSampler, prob.A, 40, 0)
	norms := EstimateNorms(s, 50, 3)
	if norms.Trials != 50 {
		t.Fatal("trials")
	}
	totalCnt := int32(0)
	for _, c := range norms.NodeCnt {
		if c < 0 || c > 50 {
			t.Fatalf("node count %d out of range", c)
		}
		totalCnt += c
	}
	// 50 trials x ~40 nodes each.
	if totalCnt < 1000 || totalCnt > 2500 {
		t.Fatalf("total node count %d implausible", totalCnt)
	}
}

func TestSubProblemStructure(t *testing.T) {
	prob := testProblem(t, 100, 8, 4)
	normA := prob.A // use raw for simplicity of value checks
	nodes := []int32{3, 17, 42, 99}
	sub := SubProblem(prob, normA, nodes, nil)
	if sub.N() != 4 || sub.X.Rows != 4 || len(sub.Labels) != 4 {
		t.Fatal("bad sub sizes")
	}
	for i, v := range nodes {
		if sub.Labels[i] != prob.Labels[v] {
			t.Fatal("labels not remapped")
		}
		if sub.X.At(i, 2) != prob.X.At(int(v), 2) {
			t.Fatal("features not remapped")
		}
		if sub.TrainMask[i] != prob.TrainMask[v] {
			t.Fatal("mask not remapped")
		}
	}
	if sub.LossWeights != nil {
		t.Fatal("no norms -> no loss weights")
	}
}

func TestSubProblemNormalizationSymmetric(t *testing.T) {
	prob := testProblem(t, 120, 8, 4)
	s := NewSampler(NodeSampler, prob.A, 60, 0)
	norms := EstimateNorms(s, 30, 4)
	rng := rand.New(rand.NewSource(5))
	nodes := s.Sample(rng)
	normA := prob.A
	sub := SubProblem(prob, normA, nodes, norms)
	// Scaled adjacency must remain symmetric (engine requirement).
	for i := 0; i < sub.N(); i++ {
		for e := sub.A.RowPtr[i]; e < sub.A.RowPtr[i+1]; e++ {
			j := int(sub.A.ColIdx[e])
			if sub.A.At(j, i) != sub.A.Val[e] {
				t.Fatalf("asymmetric scaled entry (%d,%d)", i, j)
			}
		}
	}
	// Loss weights positive.
	for _, w := range sub.LossWeights {
		if w <= 0 {
			t.Fatalf("non-positive loss weight %v", w)
		}
	}
}

func TestSAINTRDMLearns(t *testing.T) {
	prob := testProblem(t, 160, 16, 4)
	opts := Options{
		Dims: []int{16, 16, 4}, Seed: 7, Kind: NodeSampler,
		Budget: 64, NormTrials: 20, ConfigID: 10,
	}
	curve := TrainSAINTRDM(4, hw.A6000(), prob, nil, opts, 12)
	if len(curve.Points) != 12 {
		t.Fatalf("points: %d", len(curve.Points))
	}
	if curve.BestAcc() < 0.7 {
		t.Fatalf("SAINT-RDM best acc %v too low", curve.BestAcc())
	}
	first, last := curve.Points[0], curve.Final()
	if last.Time <= first.Time || last.Updates <= first.Updates {
		t.Fatal("curve must advance in time and updates")
	}
}

func TestSAINTDDPLearnsAndUpdatesFewerTimes(t *testing.T) {
	prob := testProblem(t, 160, 16, 4)
	opts := Options{
		Dims: []int{16, 16, 4}, Seed: 7, Kind: RandomWalkSampler,
		Budget: 64, WalkLength: 3, NormTrials: 20, StepsPerEpoch: 8,
	}
	ddp := TrainSAINTDDP(4, hw.A6000(), prob, nil, opts, 12)
	rdm := TrainSAINTRDM(4, hw.A6000(), prob, nil, opts, 12)
	if ddp.BestAcc() < 0.6 {
		t.Fatalf("DDP best acc %v too low", ddp.BestAcc())
	}
	// The paper's key structural difference (§V-C): with S subgraphs and
	// G devices, DDP performs S/G updates per epoch while SAINT-RDM
	// performs S.
	if ddp.Final().Updates*4 != rdm.Final().Updates {
		t.Fatalf("updates: DDP %d vs RDM %d (want 4x)", ddp.Final().Updates, rdm.Final().Updates)
	}
}

func TestFullBatchCurve(t *testing.T) {
	prob := testProblem(t, 160, 16, 4)
	opts := Options{Dims: []int{16, 16, 4}, Seed: 7, ConfigID: 10}
	curve := TrainFullBatchCurve(4, hw.A6000(), prob, nil, opts, 20)
	if len(curve.Points) != 20 {
		t.Fatalf("points: %d", len(curve.Points))
	}
	if curve.BestAcc() < 0.8 {
		t.Fatalf("full-batch best acc %v too low", curve.BestAcc())
	}
	if curve.TimeToAcc(0.5) < 0 {
		t.Fatal("TimeToAcc should find the crossing")
	}
	if curve.TimeToAcc(2.0) != -1 {
		t.Fatal("TimeToAcc must return -1 for unreachable targets")
	}
}

func TestSamplerValidation(t *testing.T) {
	prob := testProblem(t, 50, 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad budget")
		}
	}()
	NewSampler(NodeSampler, prob.A, 0, 0)
}

func TestKindStrings(t *testing.T) {
	if NodeSampler.String() != "node" || EdgeSampler.String() != "edge" ||
		RandomWalkSampler.String() != "rw" || SamplerKind(9).String() != "unknown" {
		t.Fatal("sampler kind strings")
	}
}
