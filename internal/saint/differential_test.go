// SAINT-RDM differential equivalence via the internal/verify oracle.
// External test package: verify imports saint.
package saint_test

import (
	"fmt"
	"testing"

	"gnnrdm/internal/saint"
	"gnnrdm/internal/verify"
)

// TestSAINTRDMDifferential: the accuracy-versus-updates curve must be
// P-invariant for every sampler, since subgraphs are drawn host-side
// from a shared seed and each update spans all devices (§V-C).
func TestSAINTRDMDifferential(t *testing.T) {
	prob := verify.RawProblem(13, 64, 16, 4)
	for _, kind := range []saint.SamplerKind{saint.NodeSampler, saint.EdgeSampler, saint.RandomWalkSampler} {
		kind := kind
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			opts := saint.Options{
				Dims:       []int{16, 10, 4},
				Seed:       5,
				Kind:       kind,
				Budget:     16,
				WalkLength: 3,
				NormTrials: 8,
			}
			verify.CheckSAINTDifferential(t, prob, nil, opts, 3, []int{2, 4})
		})
	}
}

// TestSAINTRDMDifferentialOrderings repeats the check under a
// redistribution-heavy ordering: the Table IV config must not change
// what SAINT learns either.
func TestSAINTRDMDifferentialOrderings(t *testing.T) {
	prob := verify.RawProblem(13, 64, 16, 4)
	for _, cfg := range []int{5, 15} {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%02d", cfg), func(t *testing.T) {
			opts := saint.Options{
				Dims:     []int{16, 10, 4},
				Seed:     5,
				Budget:   16,
				ConfigID: cfg,
			}
			verify.CheckSAINTDifferential(t, prob, nil, opts, 2, []int{2})
		})
	}
}
