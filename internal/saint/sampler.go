// Package saint implements GraphSAINT (Zeng et al., ICLR'20) as used in
// the paper's §V-C: graph samplers that produce independent training
// subgraphs, the counts-based normalization that keeps minibatch
// estimates unbiased, and two distributed trainers — GraphSAINT-RDM
// (every subgraph trained across all devices with the RDM engine, one
// weight update per subgraph) and a DGL-style DDP baseline (one subgraph
// per device per step, gradients all-reduced, so the effective batch
// size grows with the device count — the convergence drawback the paper
// demonstrates in Fig. 13).
package saint

import (
	"fmt"
	"math/rand"
	"sort"

	"gnnrdm/internal/core"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

// SamplerKind selects the GraphSAINT sampling strategy.
type SamplerKind int

const (
	// NodeSampler samples vertices with probability proportional to
	// degree.
	NodeSampler SamplerKind = iota
	// EdgeSampler samples edges uniformly and takes their endpoints.
	EdgeSampler
	// RandomWalkSampler unions fixed-length random walks from uniform
	// roots.
	RandomWalkSampler
)

func (k SamplerKind) String() string {
	switch k {
	case NodeSampler:
		return "node"
	case EdgeSampler:
		return "edge"
	case RandomWalkSampler:
		return "rw"
	}
	return "unknown"
}

// Sampler draws vertex subsets from a graph.
type Sampler struct {
	Kind   SamplerKind
	Adj    *sparse.CSR
	Budget int // target subgraph vertex count
	// WalkLength applies to RandomWalkSampler (roots = Budget/WalkLength).
	WalkLength int

	cumDeg []int64 // for degree-proportional node sampling
}

// NewSampler builds a sampler over the (raw, symmetric) adjacency.
func NewSampler(kind SamplerKind, adj *sparse.CSR, budget, walkLength int) *Sampler {
	if budget < 1 || budget > adj.Rows {
		panic(fmt.Sprintf("saint: budget %d outside [1, %d]", budget, adj.Rows))
	}
	s := &Sampler{Kind: kind, Adj: adj, Budget: budget, WalkLength: walkLength}
	if s.WalkLength < 1 {
		s.WalkLength = 2
	}
	if kind == NodeSampler {
		s.cumDeg = make([]int64, adj.Rows+1)
		for i := 0; i < adj.Rows; i++ {
			deg := adj.RowPtr[i+1] - adj.RowPtr[i] + 1 // +1 keeps isolated vertices samplable
			s.cumDeg[i+1] = s.cumDeg[i] + deg
		}
	}
	return s
}

// Sample draws one vertex subset (sorted, unique), of size <= Budget and
// >= 1.
func (s *Sampler) Sample(rng *rand.Rand) []int32 {
	set := make(map[int32]bool, s.Budget)
	switch s.Kind {
	case NodeSampler:
		total := s.cumDeg[len(s.cumDeg)-1]
		for len(set) < s.Budget {
			r := rng.Int63n(total)
			v := sort.Search(s.Adj.Rows, func(i int) bool { return s.cumDeg[i+1] > r })
			set[int32(v)] = true
		}
	case EdgeSampler:
		nnz := s.Adj.NNZ()
		if nnz == 0 {
			set[int32(rng.Intn(s.Adj.Rows))] = true
			break
		}
		for len(set) < s.Budget {
			e := rng.Int63n(nnz)
			row := sort.Search(s.Adj.Rows, func(i int) bool { return s.Adj.RowPtr[i+1] > e })
			set[int32(row)] = true
			set[s.Adj.ColIdx[e]] = true
		}
	case RandomWalkSampler:
		roots := s.Budget / s.WalkLength
		if roots < 1 {
			roots = 1
		}
		for len(set) < s.Budget {
			v := int32(rng.Intn(s.Adj.Rows))
			set[v] = true
			for step := 1; step < s.WalkLength && len(set) < s.Budget; step++ {
				lo, hi := s.Adj.RowPtr[v], s.Adj.RowPtr[v+1]
				if lo == hi {
					break
				}
				v = s.Adj.ColIdx[lo+rng.Int63n(hi-lo)]
				set[v] = true
			}
			roots--
			if roots <= 0 && len(set) > 0 {
				break
			}
		}
	default:
		panic("saint: unknown sampler kind")
	}
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > s.Budget {
		out = out[:s.Budget]
	}
	return out
}

// Norms holds the sampling-frequency statistics GraphSAINT uses to keep
// subgraph training unbiased: per-vertex counts C_v and per-edge counts
// C_e over a set of trial samples.
type Norms struct {
	Trials  int
	NodeCnt []int32
	edgeCnt map[[2]int32]int32
}

// EstimateNorms runs `trials` preliminary samples and tallies node and
// induced-edge appearance counts (GraphSAINT's pre-processing phase).
func EstimateNorms(s *Sampler, trials int, seed int64) *Norms {
	rng := rand.New(rand.NewSource(seed))
	n := &Norms{Trials: trials, NodeCnt: make([]int32, s.Adj.Rows), edgeCnt: make(map[[2]int32]int32)}
	for t := 0; t < trials; t++ {
		nodes := s.Sample(rng)
		inSet := make(map[int32]bool, len(nodes))
		for _, v := range nodes {
			inSet[v] = true
			n.NodeCnt[v]++
		}
		for _, v := range nodes {
			for e := s.Adj.RowPtr[v]; e < s.Adj.RowPtr[v+1]; e++ {
				u := s.Adj.ColIdx[e]
				if inSet[u] {
					n.edgeCnt[[2]int32{v, u}]++
				}
			}
		}
	}
	return n
}

// EdgeCount returns C_e for the directed edge (v, u).
func (n *Norms) EdgeCount(v, u int32) int32 { return n.edgeCnt[[2]int32{v, u}] }

// SubProblem builds the training problem for one sampled subgraph from
// the full problem: the induced normalized adjacency with GraphSAINT's
// aggregator normalization (each edge scaled by C_v/C_e so the aggregated
// message is unbiased), features/labels/mask restricted to the sample,
// and loss weights λ_v ∝ 1/p_v.
//
// normA is the full graph's GCN-normalized adjacency.
func SubProblem(prob *core.Problem, normA *sparse.CSR, nodes []int32, norms *Norms) *core.Problem {
	sub := normA.SubMatrix(nodes, nodes)
	if norms != nil {
		// Aggregator normalization: GraphSAINT scales entry (v,u) by
		// C_v/C_e. We use the symmetrized (C_v+C_u)/(2·C_e) so the
		// subgraph propagation matrix stays symmetric (the RDM engine
		// exploits Aᵀ = A); C_e is already symmetric because induced
		// edges are counted in both directions.
		for i := 0; i < sub.Rows; i++ {
			v := nodes[i]
			for e := sub.RowPtr[i]; e < sub.RowPtr[i+1]; e++ {
				u := nodes[sub.ColIdx[e]]
				if u == v {
					continue // self loops always present
				}
				ce := norms.EdgeCount(v, u)
				cv, cu := norms.NodeCnt[v], norms.NodeCnt[u]
				if ce > 0 {
					sub.Val[e] *= float32(cv+cu) / (2 * float32(ce))
				}
			}
		}
	}
	out := &core.Problem{
		A:      sub,
		X:      tensor.NewDense(len(nodes), prob.X.Cols),
		Labels: make([]int32, len(nodes)),
	}
	if prob.TrainMask != nil {
		out.TrainMask = make([]bool, len(nodes))
	}
	if norms != nil {
		out.LossWeights = make([]float32, len(nodes))
	}
	for i, v := range nodes {
		copy(out.X.Row(i), prob.X.Row(int(v)))
		out.Labels[i] = prob.Labels[v]
		if out.TrainMask != nil {
			out.TrainMask[i] = prob.TrainMask[v]
		}
		if out.LossWeights != nil {
			// λ_v ∝ 1/p_v = Trials / C_v; vertices never seen in trials
			// get weight 1.
			if c := norms.NodeCnt[v]; c > 0 {
				out.LossWeights[i] = float32(norms.Trials) / float32(c)
			} else {
				out.LossWeights[i] = 1
			}
		}
	}
	return out
}
