package saint

import (
	"math"
	"math/rand"
	"testing"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/sparse"
)

func TestNeighborMaskProviderInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, _ := graph.PlantedPartition(rng, 100, 800, 4, 0.7)
	norm := sparse.GCNNormalize(adj)
	provider := NeighborMaskProvider(norm, 5, 42)
	m := provider(0, 0, 100)
	for r := 0; r < 100; r++ {
		deg := int(norm.RowPtr[r+1] - norm.RowPtr[r])
		if deg <= 5 {
			if m[r] != nil {
				t.Fatalf("row %d: small degree should keep all", r)
			}
			continue
		}
		if len(m[r]) != 5 {
			t.Fatalf("row %d: got %d sampled, want 5", r, len(m[r]))
		}
		for i := 1; i < len(m[r]); i++ {
			if m[r][i-1] >= m[r][i] {
				t.Fatalf("row %d: mask not sorted/unique", r)
			}
		}
		// Sampled columns must be actual neighbors.
		for _, c := range m[r] {
			if norm.At(r, int(c)) == 0 {
				t.Fatalf("row %d: sampled non-neighbor %d", r, c)
			}
		}
	}
}

func TestNeighborMaskSharedSeedConsistency(t *testing.T) {
	// The shared-seed property (§III-F): disjoint row-range calls agree
	// with a whole-range call, so panel replicas never need to exchange
	// masks.
	rng := rand.New(rand.NewSource(2))
	adj, _ := graph.PlantedPartition(rng, 60, 600, 4, 0.7)
	p := NeighborMaskProvider(adj, 3, 7)
	whole := p(4, 0, 60)
	lower := p(4, 0, 30)
	upper := p(4, 30, 60)
	for r := 0; r < 30; r++ {
		if !equalMask(whole[r], lower[r]) || !equalMask(whole[r+30], upper[r]) {
			t.Fatalf("row-range calls disagree at %d", r)
		}
	}
	// Different epochs must differ somewhere.
	other := p(5, 0, 60)
	same := true
	for r := range whole {
		if !equalMask(whole[r], other[r]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs should sample different masks")
	}
}

func equalMask(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMaskedDistributedMatchesMaskedReference is the §III-F integration
// test: distributed RDM training with the shared-seed masked SpMM equals
// single-node training on the explicitly materialized masked operator.
func TestMaskedDistributedMatchesMaskedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	adj, comm := graph.PlantedPartition(rng, 48, 480, 4, 0.8)
	norm := sparse.GCNNormalize(adj)
	prob := &core.Problem{
		A:      norm,
		X:      graph.SynthesizeFeatures(rng, comm, 4, 8, 0.8),
		Labels: comm,
	}
	const fanout, seed = 4, 99
	opts := core.Options{
		Dims:         []int{8, 6, 4},
		Config:       costmodel.ConfigFromID(10, 2),
		Memoize:      true,
		LR:           0.01,
		Seed:         7,
		MaskProvider: NeighborMaskProvider(norm, fanout, seed),
	}
	// One epoch distributed; reference trains on the epoch-0 masked
	// operator.
	for _, p := range []int{2, 4} {
		res := core.Train(p, hw.A6000(), prob, opts, 1)
		refProb := &core.Problem{
			A: MaskedAdjacency(norm, fanout, seed, 0), X: prob.X, Labels: prob.Labels,
		}
		ref := core.ReferenceTrain(refProb, core.Options{Dims: opts.Dims, LR: 0.01, Seed: 7}, 1)
		if math.Abs(res.FinalLoss()-ref.Losses[0]) > 1e-5 {
			t.Fatalf("P=%d: masked loss %v want %v", p, res.FinalLoss(), ref.Losses[0])
		}
	}
}

func TestMaskedTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	adj, comm := graph.PlantedPartition(rng, 128, 1536, 4, 0.85)
	norm := sparse.GCNNormalize(adj)
	prob := &core.Problem{
		A:      norm,
		X:      graph.SynthesizeFeatures(rng, comm, 4, 16, 0.8),
		Labels: comm,
	}
	res := core.Train(4, hw.A6000(), prob, core.Options{
		Dims:         []int{16, 16, 4},
		Config:       costmodel.ConfigFromID(10, 2),
		Memoize:      true,
		LR:           0.02,
		Seed:         7,
		MaskProvider: NeighborMaskProvider(norm, 6, 5),
	}, 30)
	if res.FinalLoss() > res.Epochs[0].Loss*0.7 {
		t.Fatalf("masked training should converge: %v -> %v", res.Epochs[0].Loss, res.FinalLoss())
	}
	if acc := res.Accuracy(prob.Labels, nil); acc < 0.7 {
		t.Fatalf("masked training accuracy %v too low", acc)
	}
}

func TestMaskedAdjacencySubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	adj, _ := graph.PlantedPartition(rng, 80, 640, 4, 0.7)
	norm := sparse.GCNNormalize(adj)
	masked := MaskedAdjacency(norm, 3, 11, 2)
	if masked.NNZ() >= norm.NNZ() {
		t.Fatal("masking should drop entries on a dense-enough graph")
	}
	for r := 0; r < masked.Rows; r++ {
		cnt := masked.RowPtr[r+1] - masked.RowPtr[r]
		deg := norm.RowPtr[r+1] - norm.RowPtr[r]
		if deg > 3 && cnt != 3 {
			t.Fatalf("row %d kept %d of %d, want 3", r, cnt, deg)
		}
		for p := masked.RowPtr[r]; p < masked.RowPtr[r+1]; p++ {
			if norm.At(r, int(masked.ColIdx[p])) != masked.Val[p] {
				t.Fatal("masked entry must copy the original value")
			}
		}
	}
}
