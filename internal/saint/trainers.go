package saint

import (
	"fmt"
	"math/rand"

	"gnnrdm/internal/comm"
	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/nn"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/trace"
)

// Options configures a GraphSAINT training run.
type Options struct {
	// Dims is f_0..f_L.
	Dims []int
	// LR is the Adam learning rate (the paper uses 0.001 for the
	// metagenomics datasets, 0.01 otherwise).
	LR   float64
	Seed int64
	// Kind selects the sampler; Budget the subgraph vertex target;
	// WalkLength applies to random walks.
	Kind       SamplerKind
	Budget     int
	WalkLength int
	// StepsPerEpoch is the number of subgraphs per epoch S; 0 means
	// ceil(N / Budget) (one graph cover).
	StepsPerEpoch int
	// NormTrials is the number of preliminary samples for the
	// unbiasedness normalization (0 disables normalization).
	NormTrials int
	// ConfigID selects the RDM ordering for SAINT-RDM (Table IV).
	ConfigID int
	// Tracer, when non-nil, records each trainer's run into one trace
	// session ("saint-rdm", "saint-ddp", or the full-batch "gcn-rdm").
	Tracer *trace.Tracer
	// TraceLabel overrides the default session label.
	TraceLabel string
}

// traceLabel returns the session label, defaulting to def.
func (o Options) traceLabel(def string) string {
	if o.TraceLabel != "" {
		return o.TraceLabel
	}
	return def
}

func (o Options) withDefaults(n int) Options {
	if o.LR == 0 {
		o.LR = 0.01
	}
	if o.Budget == 0 {
		o.Budget = n / 8
		if o.Budget < 1 {
			o.Budget = 1
		}
	}
	if o.StepsPerEpoch == 0 {
		o.StepsPerEpoch = (n + o.Budget - 1) / o.Budget
	}
	return o
}

// CurvePoint is one accuracy-versus-time sample (Fig. 13).
type CurvePoint struct {
	// Time is cumulative simulated seconds at the end of the epoch.
	Time float64
	// TestAcc is accuracy on the problem's test mask (all labeled
	// vertices when nil).
	TestAcc float64
	// TrainLoss is the mean training loss over the epoch's updates.
	TrainLoss float64
	// Updates is the cumulative number of weight updates.
	Updates int
}

// Curve is a named accuracy-versus-time series.
type Curve struct {
	Name   string
	Points []CurvePoint
}

// Final returns the last point.
func (c *Curve) Final() CurvePoint { return c.Points[len(c.Points)-1] }

// BestAcc returns the maximum test accuracy reached.
func (c *Curve) BestAcc() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.TestAcc > best {
			best = p.TestAcc
		}
	}
	return best
}

// TimeToAcc returns the first simulated time at which the curve reaches
// the target accuracy, or -1 if it never does.
func (c *Curve) TimeToAcc(target float64) float64 {
	for _, p := range c.Points {
		if p.TestAcc >= target {
			return p.Time
		}
	}
	return -1
}

// evalFull computes test accuracy on the full graph with the given
// weights (instrumentation only: not charged to the simulated clock,
// matching how the paper evaluates offline).
func evalFull(prob *core.Problem, normA *sparse.CSR, weights []*tensor.Dense, testMask []bool) float64 {
	h := prob.X
	for l, w := range weights {
		z := tensor.MatMul(normA.SpMM(h), w)
		if l < len(weights)-1 {
			z.ReLU()
		}
		h = z
	}
	return nn.Accuracy(h, prob.Labels, testMask)
}

// TrainSAINTRDM trains with GraphSAINT sampling where every subgraph's
// forward/backward runs across all P devices using the RDM engine, so
// weights update after every subgraph regardless of P (§V-C).
//
// prob is the full-graph problem; testMask selects evaluation vertices.
func TrainSAINTRDM(p int, model *hw.Model, prob *core.Problem, testMask []bool, opts Options, epochs int) *Curve {
	opts = opts.withDefaults(prob.N())
	normA := sparse.GCNNormalize(prob.A)
	fullProb := &core.Problem{A: normA, X: prob.X, Labels: prob.Labels, TrainMask: prob.TrainMask}
	sampler := NewSampler(opts.Kind, prob.A, opts.Budget, opts.WalkLength)
	var norms *Norms
	if opts.NormTrials > 0 {
		norms = EstimateNorms(sampler, opts.NormTrials, opts.Seed+1)
	}

	// Pre-draw every subgraph (host-side, identical on all devices:
	// GraphSAINT's sampling seed is shared, §III-F).
	rng := rand.New(rand.NewSource(opts.Seed + 2))
	steps := opts.StepsPerEpoch * epochs
	subs := make([]*core.Problem, steps)
	for i := range subs {
		subs[i] = SubProblem(fullProb, normA, sampler.Sample(rng), norms)
	}

	curve := &Curve{Name: fmt.Sprintf("SAINT-RDM(%s)", opts.Kind)}
	fabric := comm.NewFabric(p, model)
	fabric.SetTracer(opts.Tracer, opts.traceLabel("saint-rdm"))
	engines := make([]*core.Engine, p)
	fabric.Run(func(d *comm.Device) {
		eng := core.NewEngine(d, subs[0], core.Options{
			Dims:    opts.Dims,
			Config:  configFor(opts.ConfigID, len(opts.Dims)-1),
			Memoize: true,
			LR:      opts.LR,
			Seed:    opts.Seed,
		})
		engines[d.Rank] = eng
		for ep := 0; ep < epochs; ep++ {
			lossSum := 0.0
			for s := 0; s < opts.StepsPerEpoch; s++ {
				// SetProblem swaps only the data: the op schedule the
				// engine compiled at construction is N-independent
				// (runtime shapes come from the live distributed
				// matrices), so it is reused verbatim for every
				// subgraph size the sampler produces.
				eng.SetProblem(subs[ep*opts.StepsPerEpoch+s])
				lossSum += eng.Epoch()
			}
			d.Barrier(d.World())
			if d.Rank == 0 {
				curve.Points = append(curve.Points, CurvePoint{
					Time:      d.Clock(),
					TestAcc:   evalFull(fullProb, normA, eng.Weights(), testMask),
					TrainLoss: lossSum / float64(opts.StepsPerEpoch),
					Updates:   (ep + 1) * opts.StepsPerEpoch,
				})
			}
			d.Barrier(d.World())
		}
	})
	return curve
}

// TrainSAINTDDP trains the DGL-style distributed-data-parallel baseline:
// each device trains a different subgraph locally and gradients are
// all-reduced, so one update consumes G subgraphs — the effective batch
// size grows with G and the update count per epoch shrinks to S/G
// (§V-C).
func TrainSAINTDDP(p int, model *hw.Model, prob *core.Problem, testMask []bool, opts Options, epochs int) *Curve {
	opts = opts.withDefaults(prob.N())
	normA := sparse.GCNNormalize(prob.A)
	fullProb := &core.Problem{A: normA, X: prob.X, Labels: prob.Labels, TrainMask: prob.TrainMask}
	sampler := NewSampler(opts.Kind, prob.A, opts.Budget, opts.WalkLength)
	var norms *Norms
	if opts.NormTrials > 0 {
		norms = EstimateNorms(sampler, opts.NormTrials, opts.Seed+1)
	}

	// S subgraphs per epoch are consumed G at a time.
	updatesPerEpoch := (opts.StepsPerEpoch + p - 1) / p
	rng := rand.New(rand.NewSource(opts.Seed + 2))
	subs := make([][]*core.Problem, epochs*updatesPerEpoch)
	for i := range subs {
		subs[i] = make([]*core.Problem, p)
		for r := 0; r < p; r++ {
			subs[i][r] = SubProblem(fullProb, normA, sampler.Sample(rng), norms)
		}
	}

	L := len(opts.Dims) - 1
	curve := &Curve{Name: fmt.Sprintf("SAINT-DDP(%s)", opts.Kind)}
	fabric := comm.NewFabric(p, model)
	fabric.SetTracer(opts.Tracer, opts.traceLabel("saint-ddp"))
	fabric.Run(func(d *comm.Device) {
		rngW := rand.New(rand.NewSource(opts.Seed))
		var weights []*tensor.Dense
		for l := 1; l <= L; l++ {
			w := tensor.NewDense(opts.Dims[l-1], opts.Dims[l])
			w.GlorotInit(rngW)
			weights = append(weights, w)
		}
		adam := nn.NewAdam(opts.LR, weights)
		for ep := 0; ep < epochs; ep++ {
			lossSum := 0.0
			for s := 0; s < updatesPerEpoch; s++ {
				sub := subs[ep*updatesPerEpoch+s][d.Rank]
				loss, grads := localStep(d, sub, weights)
				lossSum += loss
				// DDP gradient synchronization: average across devices.
				for _, g := range grads {
					sum := d.AllReduceSum(d.World(), g.Data)
					copy(g.Data, sum)
					g.Scale(1 / float32(p))
				}
				adam.Step(weights, grads)
			}
			d.Barrier(d.World())
			if d.Rank == 0 {
				curve.Points = append(curve.Points, CurvePoint{
					Time:      d.Clock(),
					TestAcc:   evalFull(fullProb, normA, weights, testMask),
					TrainLoss: lossSum / float64(updatesPerEpoch),
					Updates:   (ep + 1) * updatesPerEpoch,
				})
			}
			d.Barrier(d.World())
		}
	})
	return curve
}

// localStep runs one single-device forward/backward over a subgraph and
// returns the loss and weight gradients, charging compute to the device.
func localStep(d *comm.Device, sub *core.Problem, weights []*tensor.Dense) (float64, []*tensor.Dense) {
	L := len(weights)
	hs := make([]*tensor.Dense, L+1)
	hs[0] = sub.X
	for l := 1; l <= L; l++ {
		t := sub.A.SpMM(hs[l-1])
		d.ChargeSpMM(sub.A.NNZ(), hs[l-1].Cols)
		z := tensor.MatMul(t, weights[l-1])
		d.ChargeGemm(t.Rows, t.Cols, z.Cols)
		if l < L {
			z.ReLU()
			d.ChargeMem(z.Bytes())
		}
		hs[l] = z
	}
	lossSum, grad, wtot := nn.WeightedSoftmaxCrossEntropySum(hs[L], sub.Labels, sub.TrainMask, sub.LossWeights)
	d.ChargeMem(2 * hs[L].Bytes())
	loss := 0.0
	if wtot > 0 {
		grad.Scale(float32(1.0 / wtot))
		loss = lossSum / wtot
	}
	grads := make([]*tensor.Dense, L)
	g := grad
	for l := L; l >= 1; l-- {
		t := sub.A.SpMM(g)
		d.ChargeSpMM(sub.A.NNZ(), g.Cols)
		grads[l-1] = tensor.MatMulTA(hs[l-1], t)
		d.ChargeGemm(hs[l-1].Cols, hs[l-1].Rows, t.Cols)
		if l > 1 {
			g = tensor.MatMulTB(t, weights[l-1])
			d.ChargeGemm(t.Rows, t.Cols, weights[l-1].Rows)
			for i, v := range hs[l-1].Data {
				if v <= 0 {
					g.Data[i] = 0
				}
			}
			d.ChargeMem(g.Bytes())
		}
	}
	return loss, grads
}

// TrainFullBatchCurve runs full-batch GCN-RDM and reports the same
// accuracy-versus-time curve shape for the Fig. 13 comparison.
func TrainFullBatchCurve(p int, model *hw.Model, prob *core.Problem, testMask []bool, opts Options, epochs int) *Curve {
	opts = opts.withDefaults(prob.N())
	if testMask == nil {
		testMask = make([]bool, prob.N())
		for i := range testMask {
			testMask[i] = true
		}
	}
	normA := sparse.GCNNormalize(prob.A)
	fullProb := &core.Problem{A: normA, X: prob.X, Labels: prob.Labels, TrainMask: prob.TrainMask}
	res := core.Train(p, model, fullProb, core.Options{
		Dims:       opts.Dims,
		Config:     configFor(opts.ConfigID, len(opts.Dims)-1),
		Memoize:    true,
		LR:         opts.LR,
		Seed:       opts.Seed,
		EvalMask:   testMask,
		Tracer:     opts.Tracer,
		TraceLabel: opts.traceLabel("gcn-rdm"),
	}, epochs)
	curve := &Curve{Name: "GCN-RDM"}
	cum := 0.0
	for i, ep := range res.Epochs {
		cum += ep.Time
		curve.Points = append(curve.Points, CurvePoint{
			Time: cum, TestAcc: ep.EvalAcc, TrainLoss: ep.Loss, Updates: i + 1,
		})
	}
	return curve
}

func configFor(id, layers int) costmodel.Config { return costmodel.ConfigFromID(id, layers) }
