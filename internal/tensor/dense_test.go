package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v len=%d", m, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2)=%v", m.At(1, 2))
	}
	r := m.Row(1)
	if r[2] != 7 {
		t.Fatalf("Row view wrong: %v", r)
	}
	r[0] = 5 // view aliases storage
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias underlying data")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewDense(37, 53)
	m.Randomize(rng, 1)
	tr := m.Transpose()
	if tr.Rows != 53 || tr.Cols != 37 {
		t.Fatalf("bad transpose shape %v", tr)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	tt := tr.Transpose()
	if !AlmostEqual(m, tt, 0) {
		t.Fatal("double transpose differs")
	}
}

func TestRowColSlice(t *testing.T) {
	m := NewDense(6, 4)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	rs := m.RowSlice(2, 5)
	if rs.Rows != 3 || rs.At(0, 0) != m.At(2, 0) {
		t.Fatalf("RowSlice wrong: %v", rs.Data)
	}
	cs := m.ColSlice(1, 3)
	if cs.Cols != 2 || cs.At(4, 1) != m.At(4, 2) {
		t.Fatalf("ColSlice wrong: %v", cs.Data)
	}
}

func TestConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewDense(10, 7)
	m.Randomize(rng, 1)
	a, b := m.RowSlice(0, 4), m.RowSlice(4, 10)
	if !AlmostEqual(ConcatRows(a, b), m, 0) {
		t.Fatal("ConcatRows round trip failed")
	}
	c, d := m.ColSlice(0, 3), m.ColSlice(3, 7)
	if !AlmostEqual(ConcatCols(c, d), m, 0) {
		t.Fatal("ConcatCols round trip failed")
	}
}

func TestSetRowColSlice(t *testing.T) {
	m := NewDense(5, 5)
	part := NewDense(2, 5)
	part.Fill(3)
	m.SetRowSlice(2, part)
	if m.At(2, 0) != 3 || m.At(3, 4) != 3 || m.At(1, 0) != 0 || m.At(4, 0) != 0 {
		t.Fatal("SetRowSlice wrong region")
	}
	cp := NewDense(5, 2)
	cp.Fill(4)
	m.SetColSlice(1, cp)
	if m.At(0, 1) != 4 || m.At(4, 2) != 4 || m.At(0, 0) != 0 || m.At(0, 3) != 0 {
		t.Fatal("SetColSlice wrong region")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRowMajor(1, 4, []float32{1, -2, 3, -4})
	b := FromRowMajor(1, 4, []float32{2, 2, 2, 2})
	c := a.Clone()
	c.Add(b)
	if c.Data[0] != 3 || c.Data[1] != 0 {
		t.Fatalf("Add wrong: %v", c.Data)
	}
	c.Sub(b)
	if !AlmostEqual(c, a, 0) {
		t.Fatal("Sub did not undo Add")
	}
	h := a.Clone()
	h.Hadamard(b)
	if h.Data[3] != -8 {
		t.Fatalf("Hadamard wrong: %v", h.Data)
	}
	s := a.Clone()
	s.Scale(-1)
	if s.Data[0] != -1 || s.Data[1] != 2 {
		t.Fatalf("Scale wrong: %v", s.Data)
	}
}

func TestReLUAndGrad(t *testing.T) {
	z := FromRowMajor(1, 4, []float32{-1, 0, 2, -3})
	g := ReLUGrad(z)
	want := []float32{0, 0, 1, 0}
	for i := range want {
		if g.Data[i] != want[i] {
			t.Fatalf("ReLUGrad[%d]=%v want %v", i, g.Data[i], want[i])
		}
	}
	z.ReLU()
	if z.Data[0] != 0 || z.Data[2] != 2 {
		t.Fatalf("ReLU wrong: %v", z.Data)
	}
}

func TestGlorotInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewDense(100, 50)
	w.GlorotInit(rng)
	limit := math.Sqrt(6.0 / 150.0)
	for _, v := range w.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("value %v exceeds glorot limit %v", v, limit)
		}
	}
	if w.FrobeniusNorm() == 0 {
		t.Fatal("glorot produced all zeros")
	}
}

func refMatMul(a, b *Dense) *Dense {
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func TestMatMulAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 32, 48}, {17, 1, 9}, {5, 128, 3}} {
		a := NewDense(dims[0], dims[1])
		b := NewDense(dims[1], dims[2])
		a.Randomize(rng, 1)
		b.Randomize(rng, 1)
		got := MatMul(a, b)
		want := refMatMul(a, b)
		if MaxAbsDiff(got, want) > 1e-4 {
			t.Fatalf("dims %v: diff %v", dims, MaxAbsDiff(got, want))
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewDense(8, 6)
	b := NewDense(6, 10)
	c := NewDense(8, 10)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	c.Randomize(rng, 1)
	c0 := c.Clone()
	Gemm(2, a, b, 0.5, c)
	want := refMatMul(a, b)
	for i := range want.Data {
		exp := 2*want.Data[i] + 0.5*c0.Data[i]
		if math.Abs(float64(exp-c.Data[i])) > 1e-4 {
			t.Fatalf("alpha/beta mismatch at %d: %v vs %v", i, c.Data[i], exp)
		}
	}
}

func TestMatMulTA(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewDense(40, 13)
	b := NewDense(40, 21)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MatMulTA(a, b)
	want := refMatMul(a.Transpose(), b)
	if MaxAbsDiff(got, want) > 1e-4 {
		t.Fatalf("MatMulTA diff %v", MaxAbsDiff(got, want))
	}
}

func TestMatMulTB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewDense(12, 9)
	b := NewDense(15, 9)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MatMulTB(a, b)
	want := refMatMul(a, b.Transpose())
	if MaxAbsDiff(got, want) > 1e-4 {
		t.Fatalf("MatMulTB diff %v", MaxAbsDiff(got, want))
	}
}

// Property: (AB)C == A(BC) within fp tolerance (associativity, the algebraic
// fact RDM's operation-reordering relies on).
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n, p := 2+rng.Intn(12), 2+rng.Intn(12), 2+rng.Intn(12), 2+rng.Intn(12)
		a, b, c := NewDense(m, k), NewDense(k, n), NewDense(n, p)
		a.Randomize(rng, 1)
		b.Randomize(rng, 1)
		c.Randomize(rng, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(left, right) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: row/col slicing then concatenation is the identity.
func TestSliceConcatProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		m := NewDense(r, c)
		m.Randomize(rng, 1)
		cut := rng.Intn(r + 1)
		if !AlmostEqual(ConcatRows(m.RowSlice(0, cut), m.RowSlice(cut, r)), m, 0) {
			return false
		}
		ccut := rng.Intn(c + 1)
		return AlmostEqual(ConcatCols(m.ColSlice(0, ccut), m.ColSlice(ccut, c)), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShapePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a := NewDense(2, 3)
	b := NewDense(4, 5)
	expectPanic("MatMul", func() { MatMul(a, b) })
	expectPanic("Add", func() { a.Add(b) })
	expectPanic("RowSlice", func() { a.RowSlice(0, 3) })
	expectPanic("ColSlice", func() { a.ColSlice(2, 1) })
	expectPanic("FromRowMajor", func() { FromRowMajor(2, 2, make([]float32, 3)) })
}

func TestMaxAbsDiffAndNorm(t *testing.T) {
	a := FromRowMajor(1, 3, []float32{3, 0, 4})
	b := FromRowMajor(1, 3, []float32{3, 1, 4})
	if MaxAbsDiff(a, b) != 1 {
		t.Fatalf("MaxAbsDiff=%v", MaxAbsDiff(a, b))
	}
	if math.Abs(a.FrobeniusNorm()-5) > 1e-9 {
		t.Fatalf("norm=%v", a.FrobeniusNorm())
	}
	if AlmostEqual(a, NewDense(2, 2), 1) {
		t.Fatal("AlmostEqual must reject shape mismatch")
	}
}

func TestZeroFillCopyBytesString(t *testing.T) {
	m := NewDense(2, 3)
	m.Fill(5)
	if m.At(1, 2) != 5 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
	src := NewDense(2, 3)
	src.Fill(7)
	m.CopyFrom(src)
	if m.At(0, 0) != 7 {
		t.Fatal("CopyFrom failed")
	}
	if m.Bytes() != 24 {
		t.Fatalf("Bytes=%d", m.Bytes())
	}
	if m.String() != "Dense(2x3)" {
		t.Fatalf("String=%q", m.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom shape mismatch must panic")
		}
	}()
	m.CopyFrom(NewDense(3, 2))
}

func TestGemmFLOPs(t *testing.T) {
	if GemmFLOPs(3, 4, 5) != 60 {
		t.Fatal("GemmFLOPs")
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims must panic")
		}
	}()
	NewDense(-1, 2)
}

func TestParallelRowsSmall(t *testing.T) {
	// rows < workers path and zero-rows path.
	got := 0
	parallelRows(1, func(a, b int) { got += b - a })
	if got != 1 {
		t.Fatal("single row not covered")
	}
	parallelRows(0, func(a, b int) { t.Fatal("must not call fn for zero rows") })
}

func TestSetSlicePanics(t *testing.T) {
	m := NewDense(4, 4)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("SetRowSlice overflow", func() { m.SetRowSlice(3, NewDense(2, 4)) })
	expectPanic("SetColSlice overflow", func() { m.SetColSlice(3, NewDense(4, 2)) })
}
