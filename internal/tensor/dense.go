// Package tensor provides dense row-major float32 matrices and the
// parallel matrix kernels (GEMM and friends) used throughout the GNN-RDM
// reproduction. All kernels are deterministic: parallel partitioning is
// by disjoint row blocks, so floating-point summation order is fixed
// regardless of GOMAXPROCS.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense matrix stored in row-major order. The zero value is an
// empty 0x0 matrix.
type Dense struct {
	Rows, Cols int
	// Data holds Rows*Cols elements; element (i,j) is Data[i*Cols+j].
	Data []float32
}

// NewDense allocates a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// FromRowMajor wraps existing row-major data (not copied) as a Dense.
func FromRowMajor(r, c int, data []float32) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Bytes reports the memory footprint of the element data in bytes.
func (m *Dense) Bytes() int64 { return int64(len(m.Data)) * 4 }

// Randomize fills m with uniform values in [-scale, scale) drawn from rng.
func (m *Dense) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * scale)
	}
}

// GlorotInit fills m with the Glorot/Xavier uniform initialization for a
// weight matrix of shape (fanIn, fanOut) = (Rows, Cols).
func (m *Dense) GlorotInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	m.Randomize(rng, limit)
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	// Blocked transpose for cache friendliness.
	const b = 32
	for ii := 0; ii < m.Rows; ii += b {
		for jj := 0; jj < m.Cols; jj += b {
			iMax := min(ii+b, m.Rows)
			jMax := min(jj+b, m.Cols)
			for i := ii; i < iMax; i++ {
				row := m.Data[i*m.Cols:]
				for j := jj; j < jMax; j++ {
					out.Data[j*m.Rows+i] = row[j]
				}
			}
		}
	}
	return out
}

// RowSlice returns a copy of rows [r0, r1).
func (m *Dense) RowSlice(r0, r1 int) *Dense {
	if r0 < 0 || r1 > m.Rows || r0 > r1 {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) out of range for %d rows", r0, r1, m.Rows))
	}
	out := NewDense(r1-r0, m.Cols)
	copy(out.Data, m.Data[r0*m.Cols:r1*m.Cols])
	return out
}

// ColSlice returns a copy of columns [c0, c1).
func (m *Dense) ColSlice(c0, c1 int) *Dense {
	if c0 < 0 || c1 > m.Cols || c0 > c1 {
		panic(fmt.Sprintf("tensor: ColSlice [%d,%d) out of range for %d cols", c0, c1, m.Cols))
	}
	out := NewDense(m.Rows, c1-c0)
	for i := 0; i < m.Rows; i++ {
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// SetRowSlice copies src into rows [r0, r0+src.Rows) of m.
func (m *Dense) SetRowSlice(r0 int, src *Dense) {
	if src.Cols != m.Cols || r0 < 0 || r0+src.Rows > m.Rows {
		panic("tensor: SetRowSlice shape mismatch")
	}
	copy(m.Data[r0*m.Cols:], src.Data)
}

// SetColSlice copies src into columns [c0, c0+src.Cols) of m.
func (m *Dense) SetColSlice(c0 int, src *Dense) {
	if src.Rows != m.Rows || c0 < 0 || c0+src.Cols > m.Cols {
		panic("tensor: SetColSlice shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Data[i*m.Cols+c0:i*m.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// ConcatRows stacks the given matrices vertically. All must share Cols.
func ConcatRows(parts ...*Dense) *Dense {
	if len(parts) == 0 {
		return NewDense(0, 0)
	}
	cols := parts[0].Cols
	rows := 0
	for _, p := range parts {
		if p.Cols != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		rows += p.Rows
	}
	out := NewDense(rows, cols)
	at := 0
	for _, p := range parts {
		copy(out.Data[at*cols:], p.Data)
		at += p.Rows
	}
	return out
}

// ConcatCols stacks the given matrices horizontally. All must share Rows.
func ConcatCols(parts ...*Dense) *Dense {
	if len(parts) == 0 {
		return NewDense(0, 0)
	}
	rows := parts[0].Rows
	cols := 0
	for _, p := range parts {
		if p.Rows != rows {
			panic("tensor: ConcatCols row mismatch")
		}
		cols += p.Cols
	}
	out := NewDense(rows, cols)
	at := 0
	for _, p := range parts {
		out.SetColSlice(at, p)
		at += p.Cols
	}
	return out
}

// Add computes m += other element-wise.
func (m *Dense) Add(other *Dense) {
	checkSameShape("Add", m, other)
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// Sub computes m -= other element-wise.
func (m *Dense) Sub(other *Dense) {
	checkSameShape("Sub", m, other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Scale multiplies every element by s.
func (m *Dense) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Hadamard computes m *= other element-wise.
func (m *Dense) Hadamard(other *Dense) {
	checkSameShape("Hadamard", m, other)
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// ReLU applies max(0, x) in place and returns m.
func (m *Dense) ReLU() *Dense {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
	return m
}

// ReLUGrad returns the derivative mask of ReLU evaluated at pre-activation
// z: 1 where z > 0, else 0.
func ReLUGrad(z *Dense) *Dense {
	out := NewDense(z.Rows, z.Cols)
	for i, v := range z.Data {
		if v > 0 {
			out.Data[i] = 1
		}
	}
	return out
}

// MaxAbsDiff returns the maximum absolute element-wise difference.
func MaxAbsDiff(a, b *Dense) float64 {
	checkSameShape("MaxAbsDiff", a, b)
	maxd := 0.0
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// AlmostEqual reports whether all elements differ by at most tol.
func AlmostEqual(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func (m *Dense) String() string {
	return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
}

func checkSameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
