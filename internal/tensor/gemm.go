package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelRows runs fn over [0, rows) split into contiguous chunks, one per
// worker. Chunks are disjoint so results are deterministic.
func parallelRows(rows int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		if rows > 0 {
			fn(0, rows)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for r0 := 0; r0 < rows; r0 += chunk {
		r1 := min(r0+chunk, rows)
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			fn(a, b)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMul returns C = A * B.
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	Gemm(1, a, b, 0, c)
	return c
}

// Gemm computes C = alpha*A*B + beta*C in place.
//
// The kernel iterates i-k-j with the inner j loop over contiguous rows of B
// and C, which vectorizes well and keeps a deterministic summation order.
func Gemm(alpha float32, a, b *Dense, beta float32, c *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: Gemm shape mismatch A=%dx%d B=%dx%d C=%dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	parallelRows(a.Rows, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ci := c.Data[i*n : (i+1)*n]
			if beta == 0 {
				for j := range ci {
					ci[j] = 0
				}
			} else if beta != 1 {
				for j := range ci {
					ci[j] *= beta
				}
			}
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			for k, av := range ai {
				if av == 0 {
					continue
				}
				s := alpha * av
				bk := b.Data[k*n : (k+1)*n]
				for j, bv := range bk {
					ci[j] += s * bv
				}
			}
		}
	})
}

// MatMulTA returns C = Aᵀ * B without materializing Aᵀ.
//
// A is m x k, B is m x n, C is k x n. The parallel split is over rows of C
// (columns of A); each worker scans A and B once, accumulating only its own
// output rows, so the result is deterministic.
func MatMulTA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTA outer mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Cols, b.Cols)
	n := b.Cols
	parallelRows(a.Cols, func(k0, k1 int) {
		for i := 0; i < a.Rows; i++ {
			ai := a.Data[i*a.Cols : (i+1)*a.Cols]
			bi := b.Data[i*n : (i+1)*n]
			for k := k0; k < k1; k++ {
				av := ai[k]
				if av == 0 {
					continue
				}
				ck := c.Data[k*n : (k+1)*n]
				for j, bv := range bi {
					ck[j] += av * bv
				}
			}
		}
	})
	return c
}

// MatMulTB returns C = A * Bᵀ without materializing Bᵀ.
//
// A is m x k, B is n x k, C is m x n.
func MatMulTB(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTB inner mismatch %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Rows)
	k := a.Cols
	parallelRows(a.Rows, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*b.Rows : (i+1)*b.Rows]
			for j := 0; j < b.Rows; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var s float32
				for t, av := range ai {
					s += av * bj[t]
				}
				ci[j] = s
			}
		}
	})
	return c
}

// GemmFLOPs returns the fused multiply-add count of an (m x k)*(k x n) GEMM.
func GemmFLOPs(m, k, n int) int64 { return int64(m) * int64(k) * int64(n) }
