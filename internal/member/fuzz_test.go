package member

import (
	"bytes"
	"testing"
)

// FuzzMemberMsg drives DecodeMsg with arbitrary bytes: it must never
// panic, and every input it accepts must re-encode byte-identically
// (the wire format has exactly one representation per message).
func FuzzMemberMsg(f *testing.F) {
	seeds := []*Msg{
		{Type: MsgPing, From: 0, To: 1, Seq: 1},
		{Type: MsgAck, From: 1, To: 0, Seq: 1,
			Updates: []Update{{Rank: 2, State: Suspect, Inc: 1}}},
		{Type: MsgPingReq, From: 3, To: 5, Seq: 42, Target: 7,
			Updates: []Update{{Rank: 7, State: Dead, Inc: 0}, {Rank: 3, State: Alive, Inc: 9}}},
	}
	for _, m := range seeds {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMsg(b)
		if err != nil {
			return
		}
		if got := m.Encode(); !bytes.Equal(got, b) {
			t.Fatalf("accepted %x but re-encoded %x", b, got)
		}
		if m.Bytes() != len(b) {
			t.Fatalf("Bytes() %d != wire length %d", m.Bytes(), len(b))
		}
	})
}
