// Package member is the decentralized control plane of the simulated
// fabric: a seeded, deterministic SWIM-style gossip membership and
// failure-detection layer. Each member periodically probes one peer
// (ping), escalates through k proxies when the probe goes unanswered
// (ping-req), holds unanswered peers in a suspicion window refutable by
// incarnation-numbered alive announcements, and piggybacks
// alive/suspect/dead updates on every probe message so membership state
// disseminates epidemically in O(log P) protocol periods.
//
// The layer follows the same discipline as every data-plane collective
// in this repo: all timers are simulated clocks (protocol periods),
// never wall clocks; every message is materialized through the Msg wire
// format and metered by its encoded length; and the per-round message
// and byte censuses are asserted exactly equal to
// costmodel.GossipRoundBytes, with convergence asserted against the
// closed-form epidemic bound (verify.CheckGossipConvergence). Like
// plan.PriceOn's virtual path, the protocol state machine is advanced
// by a discrete-round simulator rather than fabric goroutines, which is
// what makes membership sweeps at P >= 1024 runnable in CI; the pricing
// uses the identical alpha-beta model the live fabric charges.
//
// core.TrainElastic consumes this layer through Detect: a crash is
// noticed by probes, disseminated epidemically, and the survivors
// independently reach the identical membership view before re-forming
// the world, with the detection latency charged to their simulated
// clocks. See RESILIENCE.md ("Membership & detection").
package member

import (
	"fmt"
	"math"
)

// State is a member's liveness in some member's local view.
type State uint8

const (
	// Alive is the healthy state; refutations re-assert it with a
	// higher incarnation.
	Alive State = iota
	// Suspect is an unanswered probe awaiting refutation or timeout.
	Suspect
	// Dead is terminal: no incarnation refutes it.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// Config fixes one protocol deployment. The zero value is usable:
// WithDefaults fills every field.
type Config struct {
	// Period is the protocol period T in simulated seconds (default
	// 10ms): one probe per member per period, suspicion timers count in
	// periods. It must comfortably exceed the alpha-beta round trip of
	// the largest probe message, which at the default piggyback limit
	// is microseconds on every modelled link.
	Period float64
	// K is the number of ping-req proxies recruited when a direct
	// probe goes unanswered (default 3).
	K int
	// SuspicionPeriods is how many periods a suspect survives without
	// refutation before it is declared dead (default 3).
	SuspicionPeriods int
	// MaxPiggyback bounds the membership updates piggybacked per
	// message (default 8).
	MaxPiggyback int
	// Lambda scales the epidemic retransmit budget: an update rides
	// outgoing messages Lambda*ceil(log2 P) times before it is dropped
	// from the gossip buffer (default 3).
	Lambda int
	// Seed drives every probabilistic choice (probe order shuffles,
	// proxy selection). The same seed reproduces the identical message
	// sequence, census, and event log (default 1).
	Seed int64
}

// WithDefaults returns the config with zero fields replaced by the
// documented defaults.
func (c Config) WithDefaults() Config {
	if c.Period <= 0 {
		c.Period = 0.01
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.SuspicionPeriods <= 0 {
		c.SuspicionPeriods = 3
	}
	if c.MaxPiggyback <= 0 {
		c.MaxPiggyback = 8
	}
	if c.Lambda <= 0 {
		c.Lambda = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RetransmitLimit is the per-update gossip budget for a p-member world:
// Lambda*ceil(log2 p) piggybacked sends, minimum 1.
func (c Config) RetransmitLimit(p int) int {
	l := c.Lambda * CeilLog2(p)
	if l < 1 {
		l = 1
	}
	return l
}

// CeilLog2 returns ceil(log2 p) with CeilLog2(1) == 0.
func CeilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}

// RoundCensus is the metered traffic of one protocol period: message
// counts by type, total piggybacked updates, and the exact wire bytes
// (the sum of every encoded message's length). Bytes must equal
// costmodel.GossipRoundBytes(Msgs, Updates) — verify asserts it.
type RoundCensus struct {
	Round         int   `json:"round"`
	Pings         int   `json:"pings"`
	Acks          int   `json:"acks"`
	PingReqs      int   `json:"ping_reqs"`
	IndirectPings int   `json:"indirect_pings"`
	Msgs          int   `json:"msgs"`
	Updates       int   `json:"updates"`
	Bytes         int64 `json:"bytes"`
}

// EventRec is one entry of the deterministic membership event log: the
// first protocol round at which any member recorded the (rank, state,
// incarnation) transition.
type EventRec struct {
	Round int    `json:"round"`
	Rank  int    `json:"rank"`
	State State  `json:"state"`
	Inc   uint32 `json:"incarnation"`
}

func (e EventRec) String() string {
	return fmt.Sprintf("r%d:%s@rank%d#%d", e.Round, e.State, e.Rank, e.Inc)
}

// Report is the outcome of one detection episode (Detect): how many
// protocol rounds until every survivor's view converged on the dead
// set, the latency those rounds cost on the simulated clock, and the
// full control-plane traffic census.
type Report struct {
	P    int   `json:"p"`
	Dead []int `json:"dead"`
	// Rounds is the number of protocol periods until convergence.
	Rounds int `json:"rounds"`
	// Latency is Rounds*Period: the simulated seconds between the
	// crash and every survivor holding the converged view.
	Latency float64 `json:"latency_sec"`
	// Converged reports whether the run reached the converged view
	// within the hard round cap (it always should; the cap only guards
	// the loop).
	Converged bool `json:"converged"`
	// Msgs / Updates / Bytes are whole-episode totals over PerRound.
	Msgs    int   `json:"msgs"`
	Updates int   `json:"updates"`
	Bytes   int64 `json:"bytes"`
	// PerRound is the per-period census, in order.
	PerRound []RoundCensus `json:"per_round"`
	// Events is the deterministic membership event log.
	Events []EventRec `json:"events"`
}

// EventLog renders the event log as one canonical comma-joined string —
// the byte-identity witness for determinism tests.
func (r *Report) EventLog() string {
	s := ""
	for i, e := range r.Events {
		if i > 0 {
			s += ","
		}
		s += e.String()
	}
	return s
}
