package member

import (
	"bytes"
	"os"
	"reflect"
	"strconv"
	"testing"

	"gnnrdm/internal/costmodel"
)

func TestMsgRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Type: MsgPing, From: 0, To: 7, Seq: 1},
		{Type: MsgAck, From: 7, To: 0, Seq: 1,
			Updates: []Update{{Rank: 3, State: Suspect, Inc: 2}}},
		{Type: MsgPingReq, From: 1, To: 2, Seq: 9, Target: 5,
			Updates: []Update{{Rank: 5, State: Dead, Inc: 0}, {Rank: 1, State: Alive, Inc: 4}}},
	}
	for _, m := range msgs {
		b := m.Encode()
		if len(b) != m.Bytes() {
			t.Fatalf("%v: Encode produced %d bytes, Bytes() says %d", m, len(b), m.Bytes())
		}
		if want := int(costmodel.GossipMsgBytes(len(m.Updates))); len(b) != want {
			t.Fatalf("%v: encoded %d bytes, cost model prices %d", m, len(b), want)
		}
		got, err := DecodeMsg(b)
		if err != nil {
			t.Fatalf("decode(%v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip changed %+v into %+v", m, got)
		}
		if !bytes.Equal(got.Encode(), b) {
			t.Fatalf("re-encode of %+v is not byte-identical", m)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := (&Msg{Type: MsgPing, From: 1, To: 2, Seq: 3,
		Updates: []Update{{Rank: 0, State: Alive, Inc: 1}}}).Encode()
	cases := map[string][]byte{
		"empty":       nil,
		"short":       valid[:MsgHeaderBytes-1],
		"truncated":   valid[:len(valid)-1],
		"trailing":    append(append([]byte(nil), valid...), 0),
		"bad-type":    append([]byte{9}, valid[1:]...),
		"bad-state":   func() []byte { b := append([]byte(nil), valid...); b[MsgHeaderBytes+2] = 7; return b }(),
		"count-lies":  func() []byte { b := append([]byte(nil), valid...); b[11] = 2; return b }(),
		"count-zero?": func() []byte { b := append([]byte(nil), valid...); b[11] = 0; return b }(),
	}
	for name, b := range cases {
		if _, err := DecodeMsg(b); err == nil {
			t.Errorf("%s: DecodeMsg accepted malformed input", name)
		}
	}
}

// memberSeeds returns the test seed matrix, extended by MEMBER_SEED
// (the CI membership chaos job's matrix variable).
func memberSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 7}
	if env := os.Getenv("MEMBER_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad MEMBER_SEED %q: %v", env, err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestDetectConvergesWithinBound is the package-local form of the
// epidemic-bound acceptance criterion, across the full P sweep the
// benchmark reports: every detection episode converges, in at most the
// closed-form bound of rounds, and every round's byte meter equals the
// cost model's census price exactly.
func TestDetectConvergesWithinBound(t *testing.T) {
	for _, p := range []int{8, 64, 256, 1024} {
		for _, seed := range memberSeeds(t) {
			for _, dead := range [][]int{{p / 2}, {1, p / 2, p - 1}} {
				cfg := Config{Seed: seed}.WithDefaults()
				rep := Detect(p, dead, cfg)
				if !rep.Converged {
					t.Fatalf("P=%d seed=%d dead=%v: not converged after %d rounds", p, seed, dead, rep.Rounds)
				}
				bound := costmodel.GossipConvergenceBound(p, cfg.SuspicionPeriods)
				if rep.Rounds > bound {
					t.Fatalf("P=%d seed=%d dead=%v: %d rounds exceeds the epidemic bound %d",
						p, seed, dead, rep.Rounds, bound)
				}
				var msgs, updates int
				var metered int64
				for _, rc := range rep.PerRound {
					if rc.Bytes != costmodel.GossipRoundBytes(rc.Msgs, rc.Updates) {
						t.Fatalf("P=%d seed=%d round %d: metered %d bytes, model prices %d",
							p, seed, rc.Round, rc.Bytes, costmodel.GossipRoundBytes(rc.Msgs, rc.Updates))
					}
					if rc.Msgs != rc.Pings+rc.Acks+rc.PingReqs+rc.IndirectPings {
						t.Fatalf("round %d: message census does not sum: %+v", rc.Round, rc)
					}
					msgs += rc.Msgs
					updates += rc.Updates
					metered += rc.Bytes
				}
				if msgs != rep.Msgs || updates != rep.Updates || metered != rep.Bytes {
					t.Fatalf("totals drift from per-round census: %d/%d/%d vs %d/%d/%d",
						rep.Msgs, rep.Updates, rep.Bytes, msgs, updates, metered)
				}
				if rep.Latency != costmodel.GossipDetectLatency(rep.Rounds, cfg.Period) {
					t.Fatalf("latency %v != %d rounds at period %v", rep.Latency, rep.Rounds, cfg.Period)
				}
			}
		}
	}
}

// TestDetectDeterministic: same (P, dead, config) twice ⇒ identical
// event log, identical per-round censuses, identical bytes.
func TestDetectDeterministic(t *testing.T) {
	for _, seed := range memberSeeds(t) {
		a := Detect(64, []int{5, 40}, Config{Seed: seed})
		b := Detect(64, []int{5, 40}, Config{Seed: seed})
		if a.EventLog() != b.EventLog() {
			t.Fatalf("event logs differ:\n%s\n%s", a.EventLog(), b.EventLog())
		}
		if !reflect.DeepEqual(a.PerRound, b.PerRound) {
			t.Fatalf("per-round censuses differ: %+v vs %+v", a.PerRound, b.PerRound)
		}
		if a.Bytes != b.Bytes || a.Rounds != b.Rounds {
			t.Fatalf("totals differ: %d/%d vs %d/%d", a.Rounds, a.Bytes, b.Rounds, b.Bytes)
		}
	}
}

// TestDetectEventLogShape: a single-crash episode's log is exactly the
// suspect transition then the dead transition of the crashed rank, at
// incarnation 0.
func TestDetectEventLogShape(t *testing.T) {
	rep := Detect(16, []int{9}, Config{Seed: 3})
	if len(rep.Events) != 2 {
		t.Fatalf("event log: %s (want suspect then dead of rank 9)", rep.EventLog())
	}
	if e := rep.Events[0]; e.Rank != 9 || e.State != Suspect || e.Inc != 0 {
		t.Fatalf("first event %s, want suspect@rank9#0", e)
	}
	if e := rep.Events[1]; e.Rank != 9 || e.State != Dead || e.Inc != 0 {
		t.Fatalf("second event %s, want dead@rank9#0", e)
	}
	if rep.Events[1].Round < rep.Events[0].Round+3 {
		t.Fatalf("dead declared at round %d, suspect at %d: suspicion window (3) not honored",
			rep.Events[1].Round, rep.Events[0].Round)
	}
}

// TestRefutation: a falsely suspected live member bumps its incarnation
// and re-asserts itself; the world converges back to all-alive and no
// view ever holds it dead.
func TestRefutation(t *testing.T) {
	const p = 8
	cfg := Config{Seed: 11, SuspicionPeriods: 4}.WithDefaults()
	s := NewSim(p, cfg)
	s.InjectSuspicion(0, 5)
	if st, _ := s.View(0, 5); st != Suspect {
		t.Fatalf("injected suspicion did not take: rank 5 is %v at observer 0", st)
	}
	bound := costmodel.GossipConvergenceBound(p, cfg.SuspicionPeriods)
	for r := 0; r < bound && !s.Converged(); r++ {
		s.Step()
		for obs := 0; obs < p; obs++ {
			if st, _ := s.View(obs, 5); st == Dead {
				t.Fatalf("round %d: observer %d declared the refuting rank 5 dead", s.Round(), obs)
			}
		}
	}
	if !s.Converged() {
		t.Fatalf("world did not reconverge after refutation within %d rounds", bound)
	}
	if inc := s.Incarnation(5); inc == 0 {
		t.Fatal("rank 5 never bumped its incarnation to refute the suspicion")
	}
	if st, inc := s.View(0, 5); st != Alive || inc != s.Incarnation(5) {
		t.Fatalf("observer 0 holds rank 5 %v#%d, want alive#%d", st, inc, s.Incarnation(5))
	}
}

// TestGossipDrains: after convergence the gossip buffers exhaust their
// retransmit budgets and steady-state rounds carry zero updates.
func TestGossipDrains(t *testing.T) {
	cfg := Config{Seed: 2}.WithDefaults()
	s := NewSim(32, cfg)
	s.Kill(17)
	for r := 0; r < MaxRounds(32, cfg) && !s.Converged(); r++ {
		s.Step()
	}
	if !s.Converged() {
		t.Fatal("did not converge")
	}
	// The retransmit budget is Lambda*ceil(log2 P) sends per update;
	// within that many further rounds every buffer must drain.
	for r := 0; r < cfg.RetransmitLimit(32); r++ {
		s.Step()
	}
	rc := s.Step()
	if rc.Updates != 0 {
		t.Fatalf("steady-state round still piggybacks %d updates", rc.Updates)
	}
	if rc.Pings == 0 {
		t.Fatal("steady-state round sends no probes")
	}
}

func TestSimPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewSim(1)", func() { NewSim(1, Config{}) })
	mustPanic("Kill out of range", func() { NewSim(4, Config{}).Kill(4) })
}

func TestCeilLog2(t *testing.T) {
	for _, c := range []struct{ p, want int }{
		{1, 0}, {2, 1}, {3, 2}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	} {
		if got := CeilLog2(c.p); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}
