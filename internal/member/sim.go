package member

import (
	"fmt"
	"math/rand"
	"sort"
)

// node is one member's protocol state.
type node struct {
	rank  int
	alive bool   // ground truth: the process is running
	inc   uint32 // own incarnation number

	view      []viewEntry // per-rank local view
	suspectAt []int       // round the local suspicion timer started; -1 when not suspect

	order []int // shuffled round-robin probe order over the other ranks
	idx   int
	seq   uint32
	rng   *rand.Rand

	gossip []bufEntry // pending updates to piggyback, managed sorted by rank
}

type viewEntry struct {
	state State
	inc   uint32
}

// bufEntry is one update in a member's gossip buffer with its remaining
// epidemic retransmit budget.
type bufEntry struct {
	up    Update
	sends int
}

// Sim advances a P-member SWIM deployment one protocol period at a
// time, entirely on simulated clocks. All per-round work runs in rank
// order with synchronous message delivery, so the same Config
// reproduces the identical message sequence, byte census, and event
// log, bit for bit.
type Sim struct {
	cfg   Config
	p     int
	nodes []*node
	round int

	limit int // per-update retransmit budget

	seen   map[eventKey]bool
	events []EventRec

	// census accumulators for the round in flight
	cur RoundCensus
}

type eventKey struct {
	rank  int
	state State
	inc   uint32
}

// NewSim creates a fully-alive deployment of p members. cfg is
// completed by WithDefaults.
func NewSim(p int, cfg Config) *Sim {
	if p < 2 {
		panic("member: a membership group needs p >= 2")
	}
	cfg = cfg.WithDefaults()
	s := &Sim{cfg: cfg, p: p, limit: cfg.RetransmitLimit(p), seen: make(map[eventKey]bool)}
	for r := 0; r < p; r++ {
		n := &node{
			rank:      r,
			alive:     true,
			view:      make([]viewEntry, p),
			suspectAt: make([]int, p),
			rng:       rand.New(rand.NewSource(cfg.Seed ^ int64(r+1)*0x9E3779B9)),
		}
		for i := range n.suspectAt {
			n.suspectAt[i] = -1
		}
		for t := 0; t < p; t++ {
			if t != r {
				n.order = append(n.order, t)
			}
		}
		n.rng.Shuffle(len(n.order), func(i, j int) { n.order[i], n.order[j] = n.order[j], n.order[i] })
		s.nodes = append(s.nodes, n)
	}
	return s
}

// Config returns the effective (default-completed) configuration.
func (s *Sim) Config() Config { return s.cfg }

// P returns the member count.
func (s *Sim) P() int { return s.p }

// Round returns the number of protocol periods stepped so far.
func (s *Sim) Round() int { return s.round }

// Kill crashes a member (ground truth): it stops sending, receiving,
// and refuting from the next period on.
func (s *Sim) Kill(rank int) {
	if rank < 0 || rank >= s.p {
		panic(fmt.Sprintf("member: Kill(%d) outside world of %d", rank, s.p))
	}
	s.nodes[rank].alive = false
}

// InjectSuspicion plants a false suspicion of `about` (at its current
// incarnation in the observer's view) into observer's gossip buffer —
// the refutation test hook: the suspect, still alive, must bump its
// incarnation and re-assert itself before the suspicion times out.
func (s *Sim) InjectSuspicion(observer, about int) {
	n := s.nodes[observer]
	n.applyUpdate(Update{Rank: uint16(about), State: Suspect, Inc: n.view[about].inc}, s)
}

// View returns (state, incarnation) of `about` in observer's view.
func (s *Sim) View(observer, about int) (State, uint32) {
	e := s.nodes[observer].view[about]
	return e.state, e.inc
}

// Incarnation returns a member's own incarnation number.
func (s *Sim) Incarnation(rank int) uint32 { return s.nodes[rank].inc }

// Converged reports whether every ground-truth-alive member's view
// marks exactly the ground-truth-dead members Dead — and no live
// member Suspect or Dead, so a false suspicion must be refuted before
// the sim converges.
func (s *Sim) Converged() bool {
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		for t, e := range n.view {
			if t == n.rank {
				continue
			}
			want := Dead
			if s.nodes[t].alive {
				want = Alive
			}
			if e.state != want {
				return false
			}
		}
	}
	return true
}

// Step advances one protocol period: every live member probes one peer
// (escalating through K proxies on silence), suspicion timers advance,
// and updates piggyback on every message. It returns the period's
// metered traffic census.
func (s *Sim) Step() RoundCensus {
	s.round++
	s.cur = RoundCensus{Round: s.round}
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		t := n.nextTarget()
		if t < 0 {
			continue
		}
		n.seq++
		if s.deliver(n, t, MsgPing, 0, &s.cur.Pings) {
			s.deliver(s.nodes[t], n.rank, MsgAck, 0, &s.cur.Acks)
			continue
		}
		// No ack: recruit K proxies to probe t indirectly. In this sim
		// links never lose messages, so an unanswered probe means the
		// target is down and the indirect probes stay unanswered too —
		// but their traffic is real and metered.
		for _, proxy := range n.pickProxies(t, s.cfg.K) {
			if s.deliver(n, proxy, MsgPingReq, uint16(t), &s.cur.PingReqs) {
				pn := s.nodes[proxy]
				pn.seq++
				s.deliver(pn, t, MsgPing, 0, &s.cur.IndirectPings)
			}
		}
		if n.view[t].state == Alive {
			n.applyUpdate(Update{Rank: uint16(t), State: Suspect, Inc: n.view[t].inc}, s)
		}
	}
	// Suspicion timeouts: unrefuted suspects become dead.
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		for t := range n.view {
			if n.view[t].state == Suspect && n.suspectAt[t] >= 0 &&
				s.round-n.suspectAt[t] >= s.cfg.SuspicionPeriods {
				n.applyUpdate(Update{Rank: uint16(t), State: Dead, Inc: n.view[t].inc}, s)
			}
		}
	}
	s.cur.Msgs = s.cur.Pings + s.cur.Acks + s.cur.PingReqs + s.cur.IndirectPings
	return s.cur
}

// deliver encodes and meters one message from n to rank `to`, applies
// its piggyback at a live destination, and reports whether the
// destination is up (i.e. whether a ping would be answered).
func (s *Sim) deliver(n *node, to int, typ MsgType, target uint16, count *int) bool {
	m := &Msg{Type: typ, From: uint16(n.rank), To: uint16(to), Seq: n.seq, Target: target,
		Updates: n.selectPiggyback(s.cfg.MaxPiggyback, s.limit)}
	*count++
	s.cur.Updates += len(m.Updates)
	s.cur.Bytes += int64(len(m.Encode()))
	dst := s.nodes[to]
	if !dst.alive {
		return false
	}
	for _, u := range m.Updates {
		dst.applyUpdate(u, s)
	}
	return true
}

// nextTarget picks the next probe target in SWIM's shuffled round-robin
// order, skipping members the local view holds dead. Returns -1 when no
// probe-worthy peer remains.
func (n *node) nextTarget() int {
	for tries := 0; tries < len(n.order); tries++ {
		if n.idx >= len(n.order) {
			n.rng.Shuffle(len(n.order), func(i, j int) { n.order[i], n.order[j] = n.order[j], n.order[i] })
			n.idx = 0
		}
		t := n.order[n.idx]
		n.idx++
		if n.view[t].state != Dead {
			return t
		}
	}
	return -1
}

// pickProxies draws up to k distinct proxies from the peers the local
// view does not hold dead, excluding the target.
func (n *node) pickProxies(target, k int) []int {
	var cands []int
	for t, e := range n.view {
		if t != n.rank && t != target && e.state != Dead {
			cands = append(cands, t)
		}
	}
	n.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if k > len(cands) {
		k = len(cands)
	}
	sort.Ints(cands[:k])
	return cands[:k]
}

// selectPiggyback picks up to max updates with the smallest send counts
// (ties by rank), charges their budgets, and evicts exhausted entries.
func (n *node) selectPiggyback(max, limit int) []Update {
	if len(n.gossip) == 0 {
		return nil
	}
	idxs := make([]int, len(n.gossip))
	for i := range idxs {
		idxs[i] = i
	}
	sort.Slice(idxs, func(a, b int) bool {
		ea, eb := &n.gossip[idxs[a]], &n.gossip[idxs[b]]
		if ea.sends != eb.sends {
			return ea.sends < eb.sends
		}
		return ea.up.Rank < eb.up.Rank
	})
	if len(idxs) > max {
		idxs = idxs[:max]
	}
	out := make([]Update, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, n.gossip[i].up)
		n.gossip[i].sends++
	}
	// Evict exhausted entries, preserving rank order.
	kept := n.gossip[:0]
	for _, e := range n.gossip {
		if e.sends < limit {
			kept = append(kept, e)
		}
	}
	n.gossip = kept
	return out
}

// queue inserts or refreshes the gossip-buffer entry for an update (a
// superseding update restarts the retransmit budget).
func (n *node) queue(u Update) {
	for i := range n.gossip {
		if n.gossip[i].up.Rank == u.Rank {
			n.gossip[i] = bufEntry{up: u}
			return
		}
	}
	n.gossip = append(n.gossip, bufEntry{up: u})
	sort.Slice(n.gossip, func(a, b int) bool { return n.gossip[a].up.Rank < n.gossip[b].up.Rank })
}

// supersedes implements SWIM's update precedence: dead beats everything
// (at any incarnation), suspect beats alive at the same or higher
// incarnation, and otherwise strictly higher incarnations win.
func supersedes(st State, inc uint32, cur viewEntry) bool {
	if cur.state == Dead {
		return false
	}
	switch st {
	case Dead:
		return true
	case Suspect:
		if cur.state == Alive {
			return inc >= cur.inc
		}
		return inc > cur.inc // suspect over suspect
	case Alive:
		return inc > cur.inc
	}
	return false
}

// applyUpdate merges one membership assertion into the node's view,
// starting/clearing suspicion timers, auto-refuting assertions about
// the node itself, and re-queueing accepted updates for further
// dissemination.
func (n *node) applyUpdate(u Update, s *Sim) {
	r := int(u.Rank)
	if r >= len(n.view) {
		return // foreign rank: ignore (decoded messages are validated upstream)
	}
	if r == n.rank {
		// Refutation: someone believes this live member suspect/dead.
		// Re-assert with a higher incarnation; dead is terminal only
		// for actually-dead processes, and those never execute this.
		if u.State != Alive && u.Inc >= n.inc {
			n.inc = u.Inc + 1
			n.view[r] = viewEntry{Alive, n.inc}
			alive := Update{Rank: u.Rank, State: Alive, Inc: n.inc}
			n.queue(alive)
			s.record(alive)
		}
		return
	}
	if !supersedes(u.State, u.Inc, n.view[r]) {
		return
	}
	n.view[r] = viewEntry{u.State, u.Inc}
	if u.State == Suspect {
		if n.suspectAt[r] < 0 {
			n.suspectAt[r] = s.round
		}
	} else {
		n.suspectAt[r] = -1
	}
	n.queue(u)
	s.record(u)
}

// record appends a first-appearance transition to the global event log.
func (s *Sim) record(u Update) {
	k := eventKey{rank: int(u.Rank), state: u.State, inc: u.Inc}
	if s.seen[k] {
		return
	}
	s.seen[k] = true
	s.events = append(s.events, EventRec{Round: s.round, Rank: k.rank, State: k.state, Inc: k.inc})
}

// Events returns the deterministic membership event log so far.
func (s *Sim) Events() []EventRec { return s.events }

// MaxRounds is the hard cap Detect runs under: comfortably above the
// closed-form convergence bound, it only guards the loop against a
// protocol bug.
func MaxRounds(p int, cfg Config) int {
	cfg = cfg.WithDefaults()
	return 8*CeilLog2(p) + cfg.SuspicionPeriods + 16
}

// Detect runs a detection episode: a fully-alive converged P-member
// world loses the `dead` ranks at period 0, and the protocol runs
// until every survivor's view converges on exactly that dead set.
// Deterministic in (p, dead, cfg); the episode's traffic census, event
// log, and round count are returned in the Report.
func Detect(p int, dead []int, cfg Config) *Report {
	cfg = cfg.WithDefaults()
	s := NewSim(p, cfg)
	deadSorted := append([]int(nil), dead...)
	sort.Ints(deadSorted)
	for _, d := range deadSorted {
		s.Kill(d)
	}
	rep := &Report{P: p, Dead: deadSorted}
	hardCap := MaxRounds(p, cfg)
	for s.round < hardCap && !s.Converged() {
		rc := s.Step()
		rep.PerRound = append(rep.PerRound, rc)
		rep.Msgs += rc.Msgs
		rep.Updates += rc.Updates
		rep.Bytes += rc.Bytes
	}
	rep.Rounds = s.round
	rep.Latency = float64(s.round) * cfg.Period
	rep.Converged = s.Converged()
	rep.Events = s.Events()
	return rep
}
