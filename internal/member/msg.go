package member

import (
	"encoding/binary"
	"fmt"
)

// MsgType enumerates the three SWIM message kinds.
type MsgType uint8

const (
	// MsgPing is a direct liveness probe (also sent by proxies on
	// behalf of a ping-req origin).
	MsgPing MsgType = 1
	// MsgAck answers a ping.
	MsgAck MsgType = 2
	// MsgPingReq asks a proxy to probe Target on the sender's behalf.
	MsgPingReq MsgType = 3
)

func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgAck:
		return "ack"
	case MsgPingReq:
		return "ping-req"
	}
	return "unknown"
}

// Update is one piggybacked membership assertion: rank is in State at
// the given incarnation.
type Update struct {
	Rank  uint16
	State State
	Inc   uint32
}

// Wire-format sizes. costmodel.GossipRoundBytes prices rounds from
// these independently (13*msgs + 7*updates); drift between the encoder
// and the cost model fails the meter-equal assertions.
const (
	// MsgHeaderBytes is the fixed prefix: type(1) from(2) to(2) seq(4)
	// target(2) count(2).
	MsgHeaderBytes = 13
	// UpdateBytes is one piggybacked update: rank(2) state(1) inc(4).
	UpdateBytes = 7
)

// Msg is one gossip wire message. Every message the simulator sends is
// encoded through this format, and its encoded length is what the
// byte meters accumulate.
type Msg struct {
	Type MsgType
	// From and To are fabric ranks.
	From, To uint16
	// Seq is the sender's probe sequence number.
	Seq uint32
	// Target is the rank a MsgPingReq asks the proxy to probe (0 and
	// unused for other types).
	Target uint16
	// Updates is the piggybacked gossip payload.
	Updates []Update
}

// Bytes returns the encoded length without encoding.
func (m *Msg) Bytes() int { return MsgHeaderBytes + UpdateBytes*len(m.Updates) }

// Encode serializes the message (little-endian, fixed-width fields).
func (m *Msg) Encode() []byte {
	b := make([]byte, m.Bytes())
	b[0] = byte(m.Type)
	binary.LittleEndian.PutUint16(b[1:], m.From)
	binary.LittleEndian.PutUint16(b[3:], m.To)
	binary.LittleEndian.PutUint32(b[5:], m.Seq)
	binary.LittleEndian.PutUint16(b[9:], m.Target)
	binary.LittleEndian.PutUint16(b[11:], uint16(len(m.Updates)))
	off := MsgHeaderBytes
	for _, u := range m.Updates {
		binary.LittleEndian.PutUint16(b[off:], u.Rank)
		b[off+2] = byte(u.State)
		binary.LittleEndian.PutUint32(b[off+3:], u.Inc)
		off += UpdateBytes
	}
	return b
}

// DecodeMsg parses an encoded message. It rejects truncated or trailing
// bytes, unknown message types, oversized update counts, and invalid
// states, and never panics; Encode(DecodeMsg(b)) == b for every
// accepted b.
func DecodeMsg(b []byte) (*Msg, error) {
	if len(b) < MsgHeaderBytes {
		return nil, fmt.Errorf("member: message truncated at %d of %d header bytes", len(b), MsgHeaderBytes)
	}
	m := &Msg{
		Type:   MsgType(b[0]),
		From:   binary.LittleEndian.Uint16(b[1:]),
		To:     binary.LittleEndian.Uint16(b[3:]),
		Seq:    binary.LittleEndian.Uint32(b[5:]),
		Target: binary.LittleEndian.Uint16(b[9:]),
	}
	switch m.Type {
	case MsgPing, MsgAck, MsgPingReq:
	default:
		return nil, fmt.Errorf("member: unknown message type %d", b[0])
	}
	count := int(binary.LittleEndian.Uint16(b[11:]))
	if want := MsgHeaderBytes + UpdateBytes*count; len(b) != want {
		return nil, fmt.Errorf("member: %d updates need %d bytes, got %d", count, want, len(b))
	}
	for off := MsgHeaderBytes; count > 0; count-- {
		u := Update{
			Rank:  binary.LittleEndian.Uint16(b[off:]),
			State: State(b[off+2]),
			Inc:   binary.LittleEndian.Uint32(b[off+3:]),
		}
		if u.State > Dead {
			return nil, fmt.Errorf("member: invalid state %d in update for rank %d", b[off+2], u.Rank)
		}
		m.Updates = append(m.Updates, u)
		off += UpdateBytes
	}
	return m, nil
}
