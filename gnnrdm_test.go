package gnnrdm

import (
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd exercises the façade the way a downstream user
// would: build a problem, ask the model for the best ordering, train,
// evaluate, checkpoint.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj, labels := PlantedPartition(rng, 96, 480, 4, 0.8)
	prob := &Problem{
		A:      GCNNormalize(adj),
		X:      synthFeatures(rng, labels, 4, 16),
		Labels: labels,
	}
	net := Network{Dims: []int{16, 12, 4}, N: 96, NNZ: prob.A.NNZ(), P: 4, RA: 4}
	ids := ParetoConfigs(net)
	if len(ids) == 0 {
		t.Fatal("no pareto candidates")
	}
	res := Train(4, A6000(), prob, TrainOptions{
		Dims:    net.Dims,
		Config:  ConfigFromID(ids[0], 2),
		Memoize: true,
		LR:      0.02,
		Seed:    7,
	}, 25)
	if res.FinalLoss() >= res.Epochs[0].Loss {
		t.Fatalf("public API training did not converge: %v -> %v",
			res.Epochs[0].Loss, res.FinalLoss())
	}
	if acc := res.Accuracy(prob.Labels, nil); acc < 0.7 {
		t.Fatalf("accuracy %v", acc)
	}
	if res.Epochs[0].CommBytes <= 0 {
		t.Fatal("no communication metered")
	}
	// Model utilities reachable and coherent.
	if ChooseRA(8, 1<<30, 1<<20, 1<<20) != 8 {
		t.Fatal("ChooseRA via facade")
	}
	if SpaceModel(net) <= 0 {
		t.Fatal("SpaceModel via facade")
	}
	if PredictEpochTime(net, ConfigFromID(ids[0], 2), A6000()) <= 0 {
		t.Fatal("PredictEpochTime via facade")
	}
	if len(Recipes()) != 8 {
		t.Fatal("Recipes via facade")
	}
}

func synthFeatures(rng *rand.Rand, labels []int32, k, f int) *Dense {
	// Tiny local feature synthesizer mirroring graph.SynthesizeFeatures
	// to keep the facade test self-contained.
	centroids := make([][]float32, k)
	for c := range centroids {
		centroids[c] = make([]float32, f)
		for j := range centroids[c] {
			centroids[c][j] = float32(rng.NormFloat64())
		}
	}
	x := &Dense{Rows: len(labels), Cols: f, Data: make([]float32, len(labels)*f)}
	for i, c := range labels {
		for j := 0; j < f; j++ {
			x.Data[i*f+j] = centroids[c][j] + float32(rng.NormFloat64())*0.2
		}
	}
	return x
}
