// Package gnnrdm's root benchmarks regenerate every table and figure of
// the paper's evaluation (§V) as testing.B targets — one per artifact.
// Each benchmark runs the full experiment once per iteration (they exceed
// the default benchtime, so `go test -bench=.` executes each once) and
// reports the headline quantity via b.ReportMetric.
//
// Dataset sizes are scaled by RDM_BENCH_SCALE (default 256) because the
// substrate is a pure-Go simulator; the shape of every result — who
// wins, by what factor, where the crossovers are — is the reproduction
// target (see EXPERIMENTS.md). Run `rdmbench -scale 64 all` for a
// closer-to-paper-size pass.
package gnnrdm

import (
	"os"
	"strconv"
	"testing"

	"gnnrdm/internal/bench"
)

func benchScale() int {
	if s := os.Getenv("RDM_BENCH_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 256
}

func benchCfg() bench.Config {
	return bench.Config{Scale: benchScale(), GPUs: []int{2, 4, 8}, Epochs: 2}
}

func benchThroughput(b *testing.B, layers, hidden int) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunThroughput(cfg, layers, hidden)
		if err != nil {
			b.Fatal(err)
		}
		sc, sd := res.Speedups(8)
		b.ReportMetric(sc, "speedup-vs-CAGNET@8")
		b.ReportMetric(sd, "speedup-vs-DGCL@8")
	}
}

// BenchmarkFig8 regenerates Fig. 8: epochs/s, 2-layer GCN, hidden=128.
func BenchmarkFig8(b *testing.B) { benchThroughput(b, 2, 128) }

// BenchmarkFig9 regenerates Fig. 9: epochs/s, 2-layer GCN, hidden=256.
func BenchmarkFig9(b *testing.B) { benchThroughput(b, 2, 256) }

// BenchmarkFig10 regenerates Fig. 10: epochs/s, 3-layer GCN, hidden=128.
func BenchmarkFig10(b *testing.B) { benchThroughput(b, 3, 128) }

// BenchmarkFig11 regenerates Fig. 11: epochs/s, 3-layer GCN, hidden=256.
func BenchmarkFig11(b *testing.B) { benchThroughput(b, 3, 256) }

// BenchmarkFig12 regenerates Fig. 12: epoch time split into compute vs
// communication for CAGNET and RDM on 8 devices.
func BenchmarkFig12(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var commRatio []float64
		for _, r := range rows {
			commRatio = append(commRatio, r.CAGNETComm/r.RDMComm)
		}
		b.ReportMetric(bench.Geomean(commRatio), "comm-ratio-CAGNET/RDM")
	}
}

// BenchmarkFig13 regenerates Fig. 13: accuracy vs time for GCN-RDM,
// GraphSAINT-RDM and GraphSAINT-DDP on the six labelled datasets.
func BenchmarkFig13(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig13(cfg, 10)
		if err != nil {
			b.Fatal(err)
		}
		var best float64
		for _, r := range rows {
			if a := r.RDMSampled.BestAcc(); a > best {
				best = a
			}
		}
		b.ReportMetric(best, "best-SAINT-RDM-acc")
	}
}

// BenchmarkTable6 regenerates Table VI: Pareto-optimal configuration
// candidates per dataset (analytic).
func BenchmarkTable6(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "datasets")
	}
}

// BenchmarkTable7 regenerates Table VII: geometric-mean speedups of RDM
// over CAGNET and DGCL across all four network shapes.
func BenchmarkTable7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sc []float64
		for _, r := range rows {
			if r.P == 8 {
				sc = append(sc, r.SpeedupCAGNET)
			}
		}
		b.ReportMetric(bench.Geomean(sc), "geomean-speedup-vs-CAGNET@8")
	}
}

// BenchmarkTable8 regenerates Table VIII: measured epoch time of
// Pareto-predicted vs all other orderings.
func BenchmarkTable8(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		valid := 0
		for _, r := range rows {
			if r.ModelValidated {
				valid++
			}
		}
		b.ReportMetric(float64(valid)/float64(len(rows)), "model-validation-rate")
	}
}

// BenchmarkTable9 regenerates Table IX: CAGNET-to-RDM epoch and comm
// time ratios for the four network shapes.
func BenchmarkTable9(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var eps []float64
		for _, r := range rows {
			eps = append(eps, r.Ratios[0][0])
		}
		b.ReportMetric(bench.Geomean(eps), "epoch-ratio-2L-h128")
	}
}

// BenchmarkTable10 regenerates Table X: per-GPU space at the paper's
// full dataset sizes (analytic).
func BenchmarkTable10(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable10(cfg, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Bytes[3])/(1<<20), "arxiv-RA8-MB")
	}
}

// BenchmarkMemoAblation measures §III-C's memoization benefit
// (extension beyond the paper's tables).
func BenchmarkMemoAblation(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunMemoAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ratio []float64
		for _, r := range rows {
			ratio = append(ratio, float64(r.NoMemoBytes)/float64(r.MemoBytes))
		}
		b.ReportMetric(bench.Geomean(ratio), "no-memo-volume-ratio")
	}
}

// BenchmarkRAAblation sweeps the adjacency replication factor
// (§III-E's communication/memory trade-off).
func BenchmarkRAAblation(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunRAAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "rows")
	}
}

// BenchmarkVolumeScaling meters communication volume vs device count for
// the three systems (the §I scalability claim).
func BenchmarkVolumeScaling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunVolumeScaling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		byKey := map[string]map[int]bench.VolumeScalingRow{}
		for _, r := range rows {
			if byKey[r.Dataset] == nil {
				byKey[r.Dataset] = map[int]bench.VolumeScalingRow{}
			}
			byKey[r.Dataset][r.P] = r
		}
		var growth []float64
		for _, m := range byKey {
			growth = append(growth, float64(m[8].RDM)/float64(m[2].RDM))
		}
		b.ReportMetric(bench.Geomean(growth), "RDM-volume-growth-2to8")
	}
}
