module gnnrdm

go 1.22
