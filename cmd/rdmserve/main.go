// Command rdmserve runs the online inference tier over one dataset: a
// seeded open-loop query stream is coalesced into microbatches and
// served by the batched, cached, distributed forward engine, then a
// summary — load, cache efficacy, exact byte ledgers, simulated
// latency — is printed. The run is bit-reproducible: same flags, same
// summary, byte for byte.
//
// Usage:
//
//	rdmserve [flags]
//
// Example:
//
//	rdmserve -p 4 -dataset OGB-Arxiv -scale 512 -queries 256 -zipf 1.5
//	rdmserve -p 4 -topo 2x2:nvlink,ib -json serve.json -trace serve_trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gnnrdm/internal/bench"
	"gnnrdm/internal/serve"
	"gnnrdm/internal/topo"
	"gnnrdm/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams and returns the exit
// code, so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdmserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := fs.Int("p", 4, "device count")
	dataset := fs.String("dataset", "OGB-Arxiv", "dataset recipe (see rdminfo)")
	scale := fs.Int("scale", 512, "dataset scale divisor")
	layers := fs.Int("layers", 2, "GCN layers")
	hidden := fs.Int("hidden", 128, "hidden width")
	configID := fs.Int("config", 0, "Table IV ordering configuration id")
	ra := fs.Int("ra", 0, "adjacency replication factor (0 = full replication)")
	queries := fs.Int("queries", 256, "queries to generate")
	users := fs.Int64("users", 1_000_000, "simulated user population")
	zipf := fs.Float64("zipf", 1.5, "Zipf popularity skew (> 1)")
	rate := fs.Float64("rate", 2000, "offered load, queries/second")
	seed := fs.Int64("seed", 17, "traffic seed")
	batch := fs.Int("batch", 8, "admission queue size trigger")
	deadline := fs.Float64("deadline", 2e-3, "admission queue deadline trigger, seconds")
	cache := fs.Int("cache", 64, "answer cache capacity in vertices (0 disables)")
	staleness := fs.Int("staleness", 0, "cache entry staleness bound in microbatches (0 = never stale)")
	topoSpec := fs.String("topo", "", "interconnect topology spec, e.g. 2x2:nvlink,ib (empty = flat)")
	jsonOut := fs.String("json", "", "write the machine-readable report to this file")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON (device timelines + request spans) to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "rdmserve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	w, err := bench.BuildWorkload(*dataset, *scale)
	if err != nil {
		fmt.Fprintln(stderr, "rdmserve:", err)
		return 1
	}
	dims := w.Dims(*layers, *hidden)

	cfg := serve.Config{
		Dims: dims, ConfigID: *configID, RA: *ra, Seed: 11,
		MaxBatch: *batch, Deadline: *deadline,
		CacheCap: *cache, Staleness: *staleness,
	}
	if *topoSpec != "" {
		sp, err := topo.ParseSpec(*topoSpec)
		if err != nil {
			fmt.Fprintln(stderr, "rdmserve:", err)
			return 1
		}
		cfg.Topology = sp.MustTopology(*p)
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.NewTracer(0)
		cfg.Tracer = tracer
		cfg.TraceLabel = fmt.Sprintf("%s/p%d/serve", *dataset, *p)
	}
	ts := serve.TrafficSpec{Queries: *queries, Users: *users, Skew: *zipf, Rate: *rate, Seed: *seed}
	if err := ts.Validate(); err != nil {
		fmt.Fprintln(stderr, "rdmserve:", err)
		return 1
	}

	s := serve.NewSession(w.Prob, cfg)
	s.Serve(*p, ts.Generate(w.Prob.N()))
	r := s.Report()
	m, pred := s.Metered(), s.Predicted()

	fmt.Fprintf(stdout, "Online GNN serving: dataset=%s scale=1/%d dims=%v P=%d topo=%s\n",
		*dataset, *scale, dims, *p, orFlat(*topoSpec))
	fmt.Fprintf(stdout, "%s\n", ts)
	fmt.Fprintf(stdout, "admission: batch<=%d deadline=%gs | cache: cap=%d staleness=%d\n",
		*batch, *deadline, *cache, *staleness)
	fmt.Fprintf(stdout, "queries %d  batches %d  hits %d  misses %d  hit-rate %.1f%%\n",
		r.Queries, r.Batches, r.Hits, r.Misses, 100*r.HitRate)
	fmt.Fprintf(stdout, "meter   alltoall %d  allgather %d  total %d  bytes/query %.1f  tier intra/inter %d/%d\n",
		r.BytesAllToAll, r.BytesAllGather, r.BytesTotal, r.BytesPerQuery,
		r.TierBytes[topo.TierIntra], r.TierBytes[topo.TierInter])
	fmt.Fprintf(stdout, "model   alltoall %d  allgather %d  tier intra/inter %d/%d  meter==model %v\n",
		r.PredAllToAll, r.PredAllGather,
		r.PredTierBytes[topo.TierIntra], r.PredTierBytes[topo.TierInter],
		m.AllToAll == pred.AllToAll && m.AllGather == pred.AllGather && m.Tier == pred.Tier)
	fmt.Fprintf(stdout, "latency p50 %.3fms  p99 %.3fms  mean %.3fms\n",
		1e3*r.P50Latency, 1e3*r.P99Latency, 1e3*r.MeanLatency)
	fmt.Fprintf(stdout, "throughput %.1f qps  sim %.6fs  model %.6fs\n",
		r.ThroughputQPS, r.SimTime, r.PredTime)

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, r); err != nil {
			fmt.Fprintln(stderr, "rdmserve:", err)
			return 1
		}
	}
	if *traceOut != "" {
		if err := writeChrome(*traceOut, tracer); err != nil {
			fmt.Fprintln(stderr, "rdmserve:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
	}
	return 0
}

func orFlat(s string) string {
	if s == "" {
		return "flat"
	}
	return s
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeChrome(path string, t *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
