package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the summary golden dump")

// TestSummaryGolden locks the default serve summary byte for byte: the
// whole tier is seeded, so any drift in admission, caching, metering or
// the closed-form prices shows up as a reviewable diff (CI diffs this
// golden too).
func TestSummaryGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	path := filepath.Join("testdata", "serve_summary.golden")
	if *updateGolden {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/rdmserve -update` to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("summary drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, out.String(), want)
	}
}

func TestMeterMatchesModelInSummary(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-p", "2", "-queries", "128", "-topo", "2x1:nvlink,ib"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "meter==model true") {
		t.Fatalf("summary does not attest meter==model:\n%s", out.String())
	}
}

func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-p", "2", "-queries", "64", "-json", path}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep["queries"].(float64) != 64 {
		t.Fatalf("report queries = %v, want 64", rep["queries"])
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-zipf", "0.5"}, &out, &errb); code != 1 {
		t.Fatalf("invalid zipf skew: exit = %d, want 1", code)
	}
	if code := run([]string{"-dataset", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown dataset: exit = %d, want 1", code)
	}
}
