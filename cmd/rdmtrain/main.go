// Command rdmtrain trains a GCN (or GraphSAGE) with GNN-RDM on the
// simulated multi-GPU fabric, on either a user-supplied graph or a
// synthetic one, and can save/resume binary checkpoints.
//
// Train on an edge list with labels:
//
//	rdmtrain -edges graph.txt -labels labels.txt -n 10000 -classes 40 \
//	         -hidden 128 -gpus 8 -epochs 50 -save model.ckpt
//
// Train on a synthetic planted-partition graph:
//
//	rdmtrain -synthetic -n 4096 -classes 8 -features 64 -epochs 30
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/dist"
	"gnnrdm/internal/fault"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/member"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/saint"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
	"gnnrdm/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams and returns the exit
// code, so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdmtrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		edges     = fs.String("edges", "", "edge-list file (u v per line)")
		labelsF   = fs.String("labels", "", "label file (one integer per line, -1 = unlabeled)")
		synthetic = fs.Bool("synthetic", false, "generate a planted-partition graph instead of loading")
		n         = fs.Int("n", 4096, "vertex count")
		classes   = fs.Int("classes", 8, "number of classes")
		features  = fs.Int("features", 64, "input feature width (synthetic features are community-correlated)")
		hidden    = fs.Int("hidden", 128, "hidden width")
		layers    = fs.Int("layers", 2, "GCN layers (2 or 3)")
		gpus      = fs.Int("gpus", 8, "simulated device count")
		epochs    = fs.Int("epochs", 30, "training epochs")
		lr        = fs.Float64("lr", 0.01, "Adam learning rate")
		seed      = fs.Int64("seed", 7, "random seed")
		sage      = fs.Bool("sage", false, "GraphSAGE two-weight layers")
		rowNorm   = fs.Bool("rownorm", false, "random-walk normalization D^-1(A+I) instead of symmetric GCN")
		configID  = fs.Int("config", -1, "Table IV ordering config ID (-1 = model-selected best)")
		ra        = fs.Int("ra", 0, "adjacency replication factor (0 = full replication)")
		fanout    = fs.Int("fanout", 0, "masked neighbor-sampling fanout (0 = full aggregation)")
		density   = fs.Float64("density", 1, "live feature-row fraction; <1 zeroes the rest and trains with the sparsity-aware exchange")
		save      = fs.String("save", "", "write a checkpoint here after training")
		resume    = fs.String("resume", "", "resume from a checkpoint")
		traceOut  = fs.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto or chrome://tracing)")
		faults    = fs.String("faults", "", "fault schedule to inject, e.g. 'crash@rank2:epoch3,slow@rank0:1.5x' (enables elastic recovery; see RESILIENCE.md)")
		faultSeed = fs.Int64("fault-seed", 1, "fault injector seed (same seed + schedule reproduces the identical run)")
		ckEvery   = fs.Int("checkpoint-every", 1, "epochs between durable recovery checkpoints in an elastic run")
		engine    = fs.String("engine", "fabric", "execution backend: fabric (live devices, full numerics) or sim (discrete-event pricing; timing and traffic only)")
		memberOn  = fs.Bool("member", false, "detect failures by SWIM gossip among survivors instead of the coordinator oracle (see RESILIENCE.md)")
		memberT   = fs.Float64("member-period", 0, "gossip protocol period in seconds (0 = protocol default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "rdmtrain:", err)
		return 1
	}

	// 1. Load or generate the graph.
	var adj *sparse.CSR
	var labels []int32
	rng := rand.New(rand.NewSource(*seed))
	switch {
	case *synthetic:
		adj, labels = graph.PlantedPartition(rng, *n, int64(8**n), *classes, 0.8)
	case *edges != "":
		f, err := os.Open(*edges)
		if err != nil {
			return fail(err)
		}
		adj, err = graph.ReadEdgeList(f, *n)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if *labelsF != "" {
			lf, err := os.Open(*labelsF)
			if err != nil {
				return fail(err)
			}
			labels, err = graph.ReadLabels(lf, *n)
			lf.Close()
			if err != nil {
				return fail(err)
			}
		} else {
			labels = make([]int32, *n)
			for i := range labels {
				labels[i] = int32(rng.Intn(*classes))
			}
			fmt.Fprintln(stdout, "note: no -labels given; using random labels (runtime evaluation only)")
		}
	default:
		return fail(fmt.Errorf("need -edges FILE or -synthetic"))
	}

	// 2. Normalize and synthesize features if needed.
	prob := &core.Problem{Labels: labels}
	if *rowNorm {
		prob.A = sparse.RowNormalize(adj)
		prob.ATranspose = prob.A.Transpose()
	} else {
		prob.A = sparse.GCNNormalize(adj)
	}
	prob.X = graph.SynthesizeFeatures(rng, labels, *classes, *features, 0.8)

	// Optional row-sparse features: keep only the canonical live set and
	// let the planner and executor agree on it by construction (the
	// executor's value scan recovers exactly these rows).
	if *density <= 0 || *density > 1 {
		return fail(fmt.Errorf("-density %g out of range (0, 1]", *density))
	}
	live := 0
	if *density < 1 {
		live = costmodel.LiveCount(*n, *density)
		sparsifyFeatures(prob, live, trainSparseSeed)
		fmt.Fprintf(stdout, "sparse features: density %g -> %d/%d live rows (two-round exchange enabled)\n",
			*density, live, *n)
	}

	// 3. Pick the ordering configuration.
	dims := []int{*features}
	for i := 1; i < *layers; i++ {
		dims = append(dims, *hidden)
	}
	dims = append(dims, *classes)
	raEff := *ra
	if raEff == 0 {
		raEff = *gpus
	}
	id := *configID
	if id < 0 {
		// Model-driven per-layer selection (§IV-B): the planner prices a
		// fully compiled schedule per candidate slot, so mixed orderings
		// no uniform Table IV row expresses fall out naturally.
		sp := plan.Spec{N: *n, Dims: dims, P: *gpus, RA: raEff, SAGE: *sage, Memoize: true,
			Live: live, SparseSeed: trainSparseSeed}
		cfg := plan.ChooseOrdering(sp, prob.A.NNZ(), hw.A6000())
		id = cfg.ID()
		sp.Config = cfg
		predicted := plan.Compile(sp).Optimize().PredictTime(prob.A.NNZ(), hw.A6000())
		fmt.Fprintf(stdout, "planner-selected ordering: %d (%v), predicted epoch %.3gs\n",
			id, cfg, predicted)
	}

	opts := core.Options{
		Dims:       dims,
		Config:     costmodel.ConfigFromID(id, *layers),
		RA:         *ra,
		Memoize:    true,
		LR:         *lr,
		Seed:       *seed,
		SAGE:       *sage,
		Live:       live,
		SparseSeed: trainSparseSeed,
	}
	if *fanout > 0 {
		opts.MaskProvider = saint.NeighborMaskProvider(prob.A, *fanout, *seed)
	}
	if *traceOut != "" {
		opts.Tracer = trace.NewTracer(0)
	}

	// 4. Train (with optional resume/save through the engine API). The
	// sim backend replays the identical compiled schedule on the
	// discrete-event engine — same clocks and metered bytes, zero
	// payloads — so it reports timing only and carries no weights.
	ex, err := core.ExecutorFor(*engine)
	if err != nil {
		return fail(err)
	}
	if ex.Name() == "sim" {
		switch {
		case *faults != "":
			return fail(fmt.Errorf("-engine sim prices the fault-free schedule; drop -faults"))
		case *save != "" || *resume != "":
			return fail(fmt.Errorf("-engine sim carries no weights; drop -save/-resume"))
		case *fanout > 0:
			return fail(fmt.Errorf("-engine sim cannot apply sampled masks; drop -fanout"))
		}
		res := ex.Train(*gpus, hw.A6000(), prob, opts, *epochs)
		for i, ep := range res.Epochs {
			if i%5 == 0 || i == len(res.Epochs)-1 {
				fmt.Fprintf(stdout, "epoch %3d  sim %.3fms  comm %.3fms  %.2fMB\n",
					i, ep.Time*1e3, ep.CommTime*1e3, float64(ep.CommBytes)/(1<<20))
			}
		}
		fmt.Fprintf(stdout, "discrete-event engine: mean epoch %.3fms  throughput %.1f epochs/s (simulated %d GPUs, timing only)\n",
			res.MeanEpochTime()*1e3, res.EpochsPerSecond(), *gpus)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fail(err)
			}
			if err := trace.WriteChrome(f, opts.Tracer); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "trace written to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
		}
		return 0
	}
	if *faults != "" {
		ff := faultFlags{
			faults: *faults, seed: *faultSeed, every: *ckEvery,
			gpus: *gpus, epochs: *epochs, ra: *ra,
			resume: *resume, save: *save, traceOut: *traceOut,
		}
		if *memberOn {
			ff.member = &member.Config{Seed: *faultSeed, Period: *memberT}
		}
		return runElastic(stdout, fail, prob, opts, ff)
	}
	var cp *core.Checkpoint
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			return fail(err)
		}
		cp, err = core.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "resumed from %s (step %d)\n", *resume, cp.Step)
	}
	res, finalCP := core.TrainResumable(*gpus, hw.A6000(), prob, opts, *epochs, cp)

	for i, ep := range res.Epochs {
		if i%5 == 0 || i == len(res.Epochs)-1 {
			fmt.Fprintf(stdout, "epoch %3d  loss %.4f  sim %.3fms  comm %.3fms  %.2fMB\n",
				i, ep.Loss, ep.Time*1e3, ep.CommTime*1e3, float64(ep.CommBytes)/(1<<20))
		}
	}
	fmt.Fprintf(stdout, "train accuracy: %.4f   throughput: %.1f epochs/s (simulated %d GPUs)\n",
		res.Accuracy(prob.Labels, nil), res.EpochsPerSecond(), *gpus)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		if err := trace.WriteChrome(f, opts.Tracer); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace written to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return fail(err)
		}
		if err := finalCP.Write(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "checkpoint written to %s\n", *save)
	}
	return 0
}

// trainSparseSeed is the canonical live-set seed (dist.GenRows
// identity), matching the rdminfo CLI and the planner test suite.
const trainSparseSeed = 3

// sparsifyFeatures zeroes every feature row outside the canonical live
// set and guarantees each live row at least one nonzero, so the
// executor's value scan (dist.LiveRows) recovers exactly the planner's
// assumed set.
func sparsifyFeatures(prob *core.Problem, live int, sseed int64) {
	n, f := prob.X.Rows, prob.X.Cols
	x := tensor.NewDense(n, f)
	for _, r := range dist.GenRows(sseed, n, live) {
		row := x.Row(int(r))
		copy(row, prob.X.Row(int(r)))
		nonzero := false
		for _, v := range row {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			row[0] = 0.5
		}
	}
	prob.X = x
}

// faultFlags carries the flag values the elastic training path needs.
type faultFlags struct {
	faults           string
	seed             int64
	every            int
	gpus, epochs, ra int
	resume, save     string
	traceOut         string
	member           *member.Config
}

// runElastic trains under an injected fault schedule with elastic
// recovery, printing a per-recovery summary alongside the usual epoch
// report. See RESILIENCE.md for the schedule grammar and fault model.
func runElastic(stdout io.Writer, fail func(error) int, prob *core.Problem, opts core.Options, ff faultFlags) int {
	if ff.resume != "" || ff.save != "" {
		return fail(fmt.Errorf("-faults runs checkpoint internally for recovery; drop -resume/-save"))
	}
	if ff.ra > 1 {
		return fail(fmt.Errorf("-faults needs -ra 0 or 1: a fixed replication factor cannot divide every shrunken world"))
	}
	sched, err := fault.ParseSchedule(ff.faults)
	if err != nil {
		return fail(err)
	}
	if err := sched.Validate(ff.gpus); err != nil {
		return fail(err)
	}

	el := core.TrainElastic(ff.gpus, hw.A6000(), prob, opts, ff.epochs, core.ElasticOptions{
		Schedule:        sched,
		FaultSeed:       ff.seed,
		CheckpointEvery: ff.every,
		Membership:      ff.member,
	})

	for i, ep := range el.Epochs {
		if i%5 == 0 || i == len(el.Epochs)-1 {
			fmt.Fprintf(stdout, "epoch %3d  loss %.4f  sim %.3fms  comm %.3fms  %.2fMB\n",
				i, ep.Loss, ep.Time*1e3, ep.CommTime*1e3, float64(ep.CommBytes)/(1<<20))
		}
	}
	for i, rec := range el.Recoveries {
		fmt.Fprintf(stdout, "recovery %d: epoch %d fault (failed ranks %v) -> rollback to epoch %d, world %d->%d, reshard %.3fMB (model %.3fMB) at sim %.3fms\n",
			i, rec.AbortEpoch, rec.Failed, rec.ResumeEpoch, rec.OldP, rec.NewP,
			float64(rec.ReshardBytes)/(1<<20), float64(rec.PredictedReshardBytes)/(1<<20), rec.SimTime*1e3)
		if rec.Detection != nil {
			fmt.Fprintf(stdout, "  gossip detection: %d rounds, latency %.1fms, control plane %d bytes (model %d)\n",
				rec.Detection.Rounds, rec.Detection.Latency*1e3, rec.ControlBytes, rec.PredictedControlBytes)
		}
	}
	fmt.Fprintf(stdout, "finished on %d/%d devices (survivors %v)  train accuracy: %.4f\n",
		el.FinalP, ff.gpus, el.FinalSurvivors, el.Accuracy(prob.Labels, nil))

	if ff.traceOut != "" {
		f, err := os.Create(ff.traceOut)
		if err != nil {
			return fail(err)
		}
		if err := trace.WriteChrome(f, opts.Tracer); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace written to %s (open in Perfetto / chrome://tracing)\n", ff.traceOut)
	}
	return 0
}
