// Command rdmtrain trains a GCN (or GraphSAGE) with GNN-RDM on the
// simulated multi-GPU fabric, on either a user-supplied graph or a
// synthetic one, and can save/resume binary checkpoints.
//
// Train on an edge list with labels:
//
//	rdmtrain -edges graph.txt -labels labels.txt -n 10000 -classes 40 \
//	         -hidden 128 -gpus 8 -epochs 50 -save model.ckpt
//
// Train on a synthetic planted-partition graph:
//
//	rdmtrain -synthetic -n 4096 -classes 8 -features 64 -epochs 30
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/saint"
	"gnnrdm/internal/sparse"
)

func main() {
	var (
		edges     = flag.String("edges", "", "edge-list file (u v per line)")
		labelsF   = flag.String("labels", "", "label file (one integer per line, -1 = unlabeled)")
		synthetic = flag.Bool("synthetic", false, "generate a planted-partition graph instead of loading")
		n         = flag.Int("n", 4096, "vertex count")
		classes   = flag.Int("classes", 8, "number of classes")
		features  = flag.Int("features", 64, "input feature width (synthetic features are community-correlated)")
		hidden    = flag.Int("hidden", 128, "hidden width")
		layers    = flag.Int("layers", 2, "GCN layers (2 or 3)")
		gpus      = flag.Int("gpus", 8, "simulated device count")
		epochs    = flag.Int("epochs", 30, "training epochs")
		lr        = flag.Float64("lr", 0.01, "Adam learning rate")
		seed      = flag.Int64("seed", 7, "random seed")
		sage      = flag.Bool("sage", false, "GraphSAGE two-weight layers")
		rowNorm   = flag.Bool("rownorm", false, "random-walk normalization D^-1(A+I) instead of symmetric GCN")
		configID  = flag.Int("config", -1, "Table IV ordering config ID (-1 = model-selected best)")
		ra        = flag.Int("ra", 0, "adjacency replication factor (0 = full replication)")
		fanout    = flag.Int("fanout", 0, "masked neighbor-sampling fanout (0 = full aggregation)")
		save      = flag.String("save", "", "write a checkpoint here after training")
		resume    = flag.String("resume", "", "resume from a checkpoint")
	)
	flag.Parse()

	// 1. Load or generate the graph.
	var adj *sparse.CSR
	var labels []int32
	rng := rand.New(rand.NewSource(*seed))
	switch {
	case *synthetic:
		adj, labels = graph.PlantedPartition(rng, *n, int64(8**n), *classes, 0.8)
	case *edges != "":
		f, err := os.Open(*edges)
		fatalIf(err)
		adj, err = graph.ReadEdgeList(f, *n)
		f.Close()
		fatalIf(err)
		if *labelsF != "" {
			lf, err := os.Open(*labelsF)
			fatalIf(err)
			labels, err = graph.ReadLabels(lf, *n)
			lf.Close()
			fatalIf(err)
		} else {
			labels = make([]int32, *n)
			for i := range labels {
				labels[i] = int32(rng.Intn(*classes))
			}
			fmt.Println("note: no -labels given; using random labels (runtime evaluation only)")
		}
	default:
		fatalIf(fmt.Errorf("need -edges FILE or -synthetic"))
	}

	// 2. Normalize and synthesize features if needed.
	prob := &core.Problem{Labels: labels}
	if *rowNorm {
		prob.A = sparse.RowNormalize(adj)
		prob.ATranspose = prob.A.Transpose()
	} else {
		prob.A = sparse.GCNNormalize(adj)
	}
	prob.X = graph.SynthesizeFeatures(rng, labels, *classes, *features, 0.8)

	// 3. Pick the ordering configuration.
	dims := []int{*features}
	for i := 1; i < *layers; i++ {
		dims = append(dims, *hidden)
	}
	dims = append(dims, *classes)
	raEff := *ra
	if raEff == 0 {
		raEff = *gpus
	}
	net := costmodel.Network{Dims: dims, N: int64(*n), NNZ: prob.A.NNZ(), P: *gpus, RA: raEff}
	id := *configID
	if id < 0 {
		candidates := costmodel.ParetoConfigs(net)
		id = candidates[0]
		fmt.Printf("model-selected ordering: candidates %v, using %d (%v)\n",
			candidates, id, costmodel.ConfigFromID(id, *layers))
	}

	opts := core.Options{
		Dims:    dims,
		Config:  costmodel.ConfigFromID(id, *layers),
		RA:      *ra,
		Memoize: true,
		LR:      *lr,
		Seed:    *seed,
		SAGE:    *sage,
	}
	if *fanout > 0 {
		opts.MaskProvider = saint.NeighborMaskProvider(prob.A, *fanout, *seed)
	}

	// 4. Train (with optional resume/save through the engine API).
	var cp *core.Checkpoint
	if *resume != "" {
		f, err := os.Open(*resume)
		fatalIf(err)
		cp, err = core.ReadCheckpoint(f)
		f.Close()
		fatalIf(err)
		fmt.Printf("resumed from %s (step %d)\n", *resume, cp.Step)
	}
	res, finalCP := trainWithCheckpoint(*gpus, prob, opts, *epochs, cp)

	for i, ep := range res.Epochs {
		if i%5 == 0 || i == len(res.Epochs)-1 {
			fmt.Printf("epoch %3d  loss %.4f  sim %.3fms  comm %.3fms  %.2fMB\n",
				i, ep.Loss, ep.Time*1e3, ep.CommTime*1e3, float64(ep.CommBytes)/(1<<20))
		}
	}
	fmt.Printf("train accuracy: %.4f   throughput: %.1f epochs/s (simulated %d GPUs)\n",
		res.Accuracy(prob.Labels, nil), res.EpochsPerSecond(), *gpus)

	if *save != "" {
		f, err := os.Create(*save)
		fatalIf(err)
		fatalIf(finalCP.Write(f))
		fatalIf(f.Close())
		fmt.Printf("checkpoint written to %s\n", *save)
	}
}

// trainWithCheckpoint mirrors core.Train but supports restore-at-start
// and snapshot-at-end.
func trainWithCheckpoint(p int, prob *core.Problem, opts core.Options, epochs int, cp *core.Checkpoint) (*core.Result, *core.Checkpoint) {
	res := (*core.Result)(nil)
	var out *core.Checkpoint
	res, out = core.TrainResumable(p, hw.A6000(), prob, opts, epochs, cp)
	return res, out
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdmtrain:", err)
		os.Exit(1)
	}
}
