package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNeedsInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "need -edges FILE or -synthetic") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestMissingEdgeFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-edges", filepath.Join(t.TempDir(), "nope.txt")}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestSyntheticTrainWithTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "train.json")
	ckpt := filepath.Join(dir, "model.ckpt")
	var out, errb bytes.Buffer
	args := []string{"-synthetic", "-n", "128", "-classes", "4", "-features", "8",
		"-hidden", "16", "-gpus", "2", "-epochs", "2",
		"-trace", tracePath, "-save", ckpt}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"planner-selected ordering", "train accuracy", "trace written to", "checkpoint written to"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q: %q", want, out.String())
		}
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Errorf("trace has no events")
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Errorf("checkpoint missing or empty: %v", err)
	}
}

func TestElasticFaultRun(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-synthetic", "-n", "128", "-classes", "4", "-features", "8",
		"-hidden", "16", "-gpus", "4", "-epochs", "5",
		"-faults", "crash@rank2:epoch2,slow@rank1:1.5x", "-fault-seed", "7"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{
		"recovery 0: epoch 2 fault (failed ranks [2])",
		"world 4->3",
		"finished on 3/4 devices (survivors [0 1 3])",
		"train accuracy",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestElasticRejectsBadCombos(t *testing.T) {
	base := []string{"-synthetic", "-n", "64", "-classes", "4", "-features", "8",
		"-gpus", "4", "-epochs", "2"}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"save", append(base, "-faults", "crash@rank1:epoch1", "-save", "x.ckpt"), "drop -resume/-save"},
		{"ra", append(base, "-faults", "crash@rank1:epoch1", "-ra", "2"), "-ra 0 or 1"},
		{"grammar", append(base, "-faults", "boom@rank1:epoch1"), "rdmtrain:"},
		{"all-dead", append(base, "-faults",
			"crash@rank0:epoch1,crash@rank1:epoch1,crash@rank2:epoch1,crash@rank3:epoch1"), "at least one must survive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(c.args, &out, &errb); code != 1 {
				t.Fatalf("exit = %d, want 1 (stderr %q)", code, errb.String())
			}
			if !strings.Contains(errb.String(), c.want) {
				t.Errorf("stderr = %q, want substring %q", errb.String(), c.want)
			}
		})
	}
}

func TestElasticGossipFlagRun(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-synthetic", "-n", "128", "-classes", "4", "-features", "8",
		"-hidden", "16", "-gpus", "4", "-epochs", "5",
		"-faults", "crash@rank2:epoch2", "-fault-seed", "7", "-member"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{
		"recovery 0: epoch 2 fault (failed ranks [2])",
		"gossip detection:",
		"finished on 3/4 devices (survivors [0 1 3])",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	// The detection summary must be meter-equal: "N bytes (model N)".
	line := out.String()[strings.Index(out.String(), "gossip detection:"):]
	line = line[:strings.Index(line, "\n")]
	var rounds, bytes_, model int
	var lat float64
	if _, err := fmt.Sscanf(strings.TrimSpace(line),
		"gossip detection: %d rounds, latency %fms, control plane %d bytes (model %d)",
		&rounds, &lat, &bytes_, &model); err != nil {
		t.Fatalf("unparseable summary %q: %v", line, err)
	}
	if rounds <= 0 || lat <= 0 || bytes_ == 0 || bytes_ != model {
		t.Fatalf("implausible detection summary: %q", line)
	}

	// Oracle detection: same fault, no -member -> no gossip line.
	var out2, errb2 bytes.Buffer
	if code := run(args[:len(args)-1], &out2, &errb2); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb2.String())
	}
	if strings.Contains(out2.String(), "gossip detection:") {
		t.Error("coordinator-oracle run printed a gossip summary")
	}
}

// TestSimEngineRun drives -engine sim end to end: the discrete-event
// backend prints timing-only epoch lines (no loss, no accuracy — it
// never materializes payloads) and still supports trace export.
func TestSimEngineRun(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "sim.json")
	var out, errb bytes.Buffer
	args := []string{"-synthetic", "-n", "128", "-classes", "4", "-features", "8",
		"-hidden", "16", "-gpus", "2", "-epochs", "3", "-config", "3",
		"-engine", "sim", "-trace", tracePath}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"discrete-event engine", "timing only", "trace written to"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q: %q", want, out.String())
		}
	}
	for _, reject := range []string{"loss", "accuracy"} {
		if strings.Contains(out.String(), reject) {
			t.Errorf("sim engine printed numerics it cannot have: %q in %q", reject, out.String())
		}
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Errorf("trace has no events")
	}
}

// TestSimEngineRejectsBadCombos: flags that need payloads or weights
// fail fast under -engine sim, and unknown engine names fail outright.
func TestSimEngineRejectsBadCombos(t *testing.T) {
	base := []string{"-synthetic", "-n", "64", "-classes", "4", "-features", "8",
		"-hidden", "8", "-gpus", "2", "-epochs", "1", "-config", "0"}
	for _, tc := range []struct {
		extra []string
		want  string
	}{
		{[]string{"-engine", "warp"}, "unknown engine"},
		{[]string{"-engine", "sim", "-faults", "crash@rank1:epoch1"}, "drop -faults"},
		{[]string{"-engine", "sim", "-save", "x.ckpt"}, "drop -save"},
		{[]string{"-engine", "sim", "-fanout", "2"}, "drop -fanout"},
	} {
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, base...), tc.extra...), &out, &errb); code != 1 {
			t.Fatalf("%v: exit = %d, want 1", tc.extra, code)
		}
		if !strings.Contains(errb.String(), tc.want) {
			t.Errorf("%v: stderr %q missing %q", tc.extra, errb.String(), tc.want)
		}
	}
}
