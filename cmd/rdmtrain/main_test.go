package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNeedsInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "need -edges FILE or -synthetic") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestMissingEdgeFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-edges", filepath.Join(t.TempDir(), "nope.txt")}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestSyntheticTrainWithTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "train.json")
	ckpt := filepath.Join(dir, "model.ckpt")
	var out, errb bytes.Buffer
	args := []string{"-synthetic", "-n", "128", "-classes", "4", "-features", "8",
		"-hidden", "16", "-gpus", "2", "-epochs", "2",
		"-trace", tracePath, "-save", ckpt}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"model-selected ordering", "train accuracy", "trace written to", "checkpoint written to"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q: %q", want, out.String())
		}
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Errorf("trace has no events")
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Errorf("checkpoint missing or empty: %v", err)
	}
}
