// Command rdmbench regenerates the paper's evaluation tables and figures
// on the simulated multi-GPU fabric.
//
// Usage:
//
//	rdmbench [flags] <experiment>
//
// Experiments: fig8 fig9 fig10 fig11 fig12 fig13 table6 table7 table8
// table9 table10 memo ra volume all
//
// Example:
//
//	rdmbench -scale 128 -gpus 2,4,8 fig8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gnnrdm/internal/bench"
)

func main() {
	scale := flag.Int("scale", 128, "dataset scale divisor (1 = the paper's full sizes; large values keep pure-Go runtimes sane)")
	gpus := flag.String("gpus", "2,4,8", "comma-separated device counts")
	epochs := flag.Int("epochs", 2, "epochs per measured run (first is warm-up)")
	datasets := flag.String("datasets", "", "comma-separated dataset subset (default: all eight)")
	saintEpochs := flag.Int("saint-epochs", 15, "training epochs for fig13 curves")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rdmbench [flags] <experiment>\n\nexperiments:\n")
		fmt.Fprintf(os.Stderr, "  fig8 fig9 fig10 fig11  training throughput (2/3 layers x 128/256 hidden)\n")
		fmt.Fprintf(os.Stderr, "  fig12                  epoch time breakdown: compute vs communication\n")
		fmt.Fprintf(os.Stderr, "  fig13                  accuracy vs time: GCN-RDM / SAINT-RDM / SAINT-DDP\n")
		fmt.Fprintf(os.Stderr, "  table6                 pareto-optimal configuration candidates\n")
		fmt.Fprintf(os.Stderr, "  table7                 geomean speedups over CAGNET and DGCL\n")
		fmt.Fprintf(os.Stderr, "  table8                 measured pareto vs non-pareto epoch times\n")
		fmt.Fprintf(os.Stderr, "  table9                 CAGNET/RDM epoch and comm time ratios\n")
		fmt.Fprintf(os.Stderr, "  table10                per-GPU space model (paper-scale)\n")
		fmt.Fprintf(os.Stderr, "  memo ra volume         ablations (memoization, R_A sweep, volume scaling)\n")
		fmt.Fprintf(os.Stderr, "  hwablate predict spmm  interconnect sensitivity; model validation; SpMM kernels\n")
		fmt.Fprintf(os.Stderr, "  all                    everything above\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{
		Scale:  *scale,
		Epochs: *epochs,
		Out:    os.Stdout,
	}
	for _, s := range strings.Split(*gpus, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fatal(fmt.Errorf("bad -gpus entry %q", s))
		}
		cfg.GPUs = append(cfg.GPUs, p)
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	var run func(name string)
	run = func(name string) {
		var err error
		switch name {
		case "fig8":
			_, err = bench.RunThroughput(cfg, 2, 128)
		case "fig9":
			_, err = bench.RunThroughput(cfg, 2, 256)
		case "fig10":
			_, err = bench.RunThroughput(cfg, 3, 128)
		case "fig11":
			_, err = bench.RunThroughput(cfg, 3, 256)
		case "fig12":
			_, err = bench.RunFig12(cfg)
		case "fig13":
			_, err = bench.RunFig13(cfg, *saintEpochs)
		case "table6":
			_, err = bench.RunTable6(cfg)
		case "table7":
			_, err = bench.RunTable7(cfg)
		case "table8":
			_, err = bench.RunTable8(cfg)
		case "table9":
			_, err = bench.RunTable9(cfg)
		case "table10":
			_, err = bench.RunTable10(cfg, true)
		case "memo":
			_, err = bench.RunMemoAblation(cfg)
		case "ra":
			_, err = bench.RunRAAblation(cfg)
		case "volume":
			_, err = bench.RunVolumeScaling(cfg)
		case "hwablate":
			_, err = bench.RunHWAblation(cfg)
		case "predict":
			_, err = bench.RunPredictionValidation(cfg)
		case "spmm":
			_, err = bench.RunSpMMKernels(cfg)
		case "all":
			for _, e := range []string{"table6", "table10", "fig8", "fig9", "fig10", "fig11",
				"fig12", "table7", "table8", "table9", "memo", "ra", "volume", "hwablate",
				"predict", "spmm", "fig13"} {
				fmt.Println("==== " + e + " ====")
				run(e)
				fmt.Println()
			}
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			fatal(err)
		}
	}
	run(flag.Arg(0))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdmbench:", err)
	os.Exit(1)
}
