// Command rdmbench regenerates the paper's evaluation tables and figures
// on the simulated multi-GPU fabric.
//
// Usage:
//
//	rdmbench [flags] <experiment>
//
// Experiments: fig8 fig9 fig10 fig11 fig12 fig13 table6 table7 table8
// table9 table10 memo ra volume topo serve overlap member scale sparse all
//
// Example:
//
//	rdmbench -scale 128 -gpus 2,4,8 fig8
//	rdmbench -scale 256 -gpus 2 -datasets OGB-Arxiv fig12 -trace fig12.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gnnrdm/internal/bench"
	"gnnrdm/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams and returns the exit
// code, so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 128, "dataset scale divisor (1 = the paper's full sizes; large values keep pure-Go runtimes sane)")
	gpus := fs.String("gpus", "2,4,8", "comma-separated device counts")
	epochs := fs.Int("epochs", 2, "epochs per measured run (first is warm-up)")
	datasets := fs.String("datasets", "", "comma-separated dataset subset (default: all eight)")
	saintEpochs := fs.Int("saint-epochs", 15, "training epochs for fig13 curves")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON of every run to this file (open in Perfetto or chrome://tracing)")
	traceSummary := fs.Bool("trace-summary", false, "with -trace, also print per-op counters and sim-time totals")
	jsonOut := fs.String("json", "", "write machine-readable results of JSON-capable experiments (topo -> BENCH_topo.json, serve -> BENCH_serve.json, overlap -> BENCH_overlap.json, member -> BENCH_member.json, scale -> BENCH_scale.json, sparse -> BENCH_sparse.json) to this file")
	scalePoints := fs.String("scale-points", bench.DefaultScaleSpec, "scale experiment sweep, semicolon-separated P[@topoSpec|@flat] points (bare P sweeps flat plus (P/8)x8:nvlink,ib)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rdmbench [flags] <experiment>\n\nexperiments:\n")
		fmt.Fprintf(stderr, "  fig8 fig9 fig10 fig11  training throughput (2/3 layers x 128/256 hidden)\n")
		fmt.Fprintf(stderr, "  fig12                  epoch time breakdown: compute vs communication\n")
		fmt.Fprintf(stderr, "  fig13                  accuracy vs time: GCN-RDM / SAINT-RDM / SAINT-DDP\n")
		fmt.Fprintf(stderr, "  table6                 pareto-optimal configuration candidates\n")
		fmt.Fprintf(stderr, "  table7                 geomean speedups over CAGNET and DGCL\n")
		fmt.Fprintf(stderr, "  table8                 measured pareto vs non-pareto epoch times\n")
		fmt.Fprintf(stderr, "  table9                 CAGNET/RDM epoch and comm time ratios\n")
		fmt.Fprintf(stderr, "  table10                per-GPU space model (paper-scale)\n")
		fmt.Fprintf(stderr, "  memo ra volume         ablations (memoization, R_A sweep, volume scaling)\n")
		fmt.Fprintf(stderr, "  topo                   topology-aware collectives: per-tier traffic and algorithm crossover\n")
		fmt.Fprintf(stderr, "  serve                  online inference tier: latency/throughput vs load and Zipf skew\n")
		fmt.Fprintf(stderr, "  overlap                comm/compute overlap: sequential vs DAG-executor epoch time\n")
		fmt.Fprintf(stderr, "  member                 gossip membership: detection latency and control-plane bytes vs P\n")
		fmt.Fprintf(stderr, "  scale                  discrete-event backend: 16-config x topology sweeps at P up to 4096\n")
		fmt.Fprintf(stderr, "  sparse                 sparsity-aware exchange: comm bytes and epoch time vs feature density\n")
		fmt.Fprintf(stderr, "  hwablate predict spmm  interconnect sensitivity; model validation; SpMM kernels\n")
		fmt.Fprintf(stderr, "  all                    everything above\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Accept flags after the experiment name too (flag parsing stops at
	// the first positional): pull one positional, re-parse the rest.
	experiment := ""
	for fs.NArg() > 0 {
		if experiment != "" {
			fs.Usage()
			return 2
		}
		experiment = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return 2
		}
	}
	if experiment == "" {
		fs.Usage()
		return 2
	}

	cfg := bench.Config{
		Scale:  *scale,
		Epochs: *epochs,
		Out:    stdout,
	}
	for _, s := range strings.Split(*gpus, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			fmt.Fprintf(stderr, "rdmbench: bad -gpus entry %q\n", s)
			return 1
		}
		cfg.GPUs = append(cfg.GPUs, p)
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *traceOut != "" {
		cfg.Tracer = trace.NewTracer(0)
	}

	var runExp func(name string) error
	runExp = func(name string) error {
		var err error
		switch name {
		case "fig8":
			_, err = bench.RunThroughput(cfg, 2, 128)
		case "fig9":
			_, err = bench.RunThroughput(cfg, 2, 256)
		case "fig10":
			_, err = bench.RunThroughput(cfg, 3, 128)
		case "fig11":
			_, err = bench.RunThroughput(cfg, 3, 256)
		case "fig12":
			_, err = bench.RunFig12(cfg)
		case "fig13":
			_, err = bench.RunFig13(cfg, *saintEpochs)
		case "table6":
			_, err = bench.RunTable6(cfg)
		case "table7":
			_, err = bench.RunTable7(cfg)
		case "table8":
			_, err = bench.RunTable8(cfg)
		case "table9":
			_, err = bench.RunTable9(cfg)
		case "table10":
			_, err = bench.RunTable10(cfg, true)
		case "memo":
			_, err = bench.RunMemoAblation(cfg)
		case "ra":
			_, err = bench.RunRAAblation(cfg)
		case "volume":
			_, err = bench.RunVolumeScaling(cfg)
		case "topo":
			var res *bench.TopoResult
			if res, err = bench.RunTopoComparison(cfg); err == nil && *jsonOut != "" {
				err = writeJSONFile(*jsonOut, res)
			}
		case "serve":
			var res *bench.ServeResult
			if res, err = bench.RunServe(cfg); err == nil && *jsonOut != "" {
				err = writeJSONFile(*jsonOut, res)
			}
		case "overlap":
			var res *bench.OverlapResult
			if res, err = bench.RunOverlap(cfg); err == nil && *jsonOut != "" {
				err = writeJSONFile(*jsonOut, res)
			}
		case "member":
			var res *bench.MemberResult
			if res, err = bench.RunMember(cfg); err == nil && *jsonOut != "" {
				err = writeJSONFile(*jsonOut, res)
			}
		case "scale":
			var res *bench.ScaleResult
			if res, err = bench.RunScale(cfg, *scalePoints); err == nil && *jsonOut != "" {
				err = writeJSONFile(*jsonOut, res)
			}
		case "sparse":
			var res *bench.SparseResult
			if res, err = bench.RunSparse(cfg); err == nil && *jsonOut != "" {
				err = writeJSONFile(*jsonOut, res)
			}
		case "hwablate":
			_, err = bench.RunHWAblation(cfg)
		case "predict":
			_, err = bench.RunPredictionValidation(cfg)
		case "spmm":
			_, err = bench.RunSpMMKernels(cfg)
		case "all":
			for _, e := range []string{"table6", "table10", "fig8", "fig9", "fig10", "fig11",
				"fig12", "table7", "table8", "table9", "memo", "ra", "volume", "topo",
				"serve", "overlap", "member", "scale", "sparse", "hwablate", "predict", "spmm", "fig13"} {
				fmt.Fprintln(stdout, "==== "+e+" ====")
				if err := runExp(e); err != nil {
					return err
				}
				fmt.Fprintln(stdout)
			}
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		return err
	}
	if err := runExp(experiment); err != nil {
		fmt.Fprintln(stderr, "rdmbench:", err)
		return 1
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, cfg.Tracer); err != nil {
			fmt.Fprintln(stderr, "rdmbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s (open in Perfetto / chrome://tracing)\n", *traceOut)
		if *traceSummary {
			trace.Summarize(cfg.Tracer).WriteText(stdout)
		}
	}
	return 0
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, t *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
