package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNoExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage: rdmbench") {
		t.Errorf("usage not printed: %q", errb.String())
	}
}

func TestBadGPUs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-gpus", "two", "fig12"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "bad -gpus") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"fig99"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errb.String())
	}
}

// TestOverlapJSON smoke-tests the overlap experiment end to end at a
// tiny scale: the JSON must decode into rows that each keep the
// overlapped epoch at or below the sequential one, with at least one
// strictly faster (the checked-in BENCH_overlap.json is the full-scale
// run of the same experiment).
func TestOverlapJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "overlap.json")
	var out, errb bytes.Buffer
	args := []string{"-scale", "4096", "-epochs", "2", "-datasets", "OGB-Arxiv",
		"overlap", "-json", path}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Rows []struct {
			Topology        string  `json:"topology"`
			SeqEpochSec     float64 `json:"seq_epoch_sec"`
			OverlapEpochSec float64 `json:"overlap_epoch_sec"`
			Efficiency      float64 `json:"efficiency"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("BENCH JSON invalid: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	faster := 0
	for _, r := range res.Rows {
		if r.OverlapEpochSec > r.SeqEpochSec {
			t.Errorf("%s: overlap epoch %v exceeds sequential %v", r.Topology, r.OverlapEpochSec, r.SeqEpochSec)
		}
		if r.Efficiency < 0 || r.Efficiency >= 1 {
			t.Errorf("%s: efficiency %v out of range", r.Topology, r.Efficiency)
		}
		if r.OverlapEpochSec < r.SeqEpochSec {
			faster++
		}
	}
	if faster == 0 {
		t.Error("no cell trained strictly faster under the overlap executor")
	}
}

// TestFig12Trace drives the acceptance path end to end: a tiny fig12 run
// with flags after the experiment name, emitting a Chrome trace that
// must be valid JSON and byte-identical across two runs.
func TestFig12Trace(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) {
		t.Helper()
		var out, errb bytes.Buffer
		args := []string{"-scale", "8192", "-gpus", "2", "-datasets", "OGB-Arxiv",
			"fig12", "-trace", path, "-trace-summary"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit = %d, stderr = %q", code, errb.String())
		}
		if !strings.Contains(out.String(), "trace written to") ||
			!strings.Contains(out.String(), "=== trace session") {
			t.Errorf("stdout missing trace report: %q", out.String())
		}
	}
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	runOnce(p1)
	runOnce(p2)

	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1, &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, flows int
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "s":
			flows++
		}
	}
	if complete == 0 || flows == 0 {
		t.Errorf("trace has %d complete events and %d flows", complete, flows)
	}

	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("two identical runs wrote different traces (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestMemberJSON drives the membership experiment end to end and pins
// the property the checked-in BENCH_member.json certifies: the emitted
// JSON is byte-identical run to run (the sweep is fully seeded), every
// row converges within its bound, and meters equal the cost model.
func TestMemberJSON(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) []byte {
		var out, errb bytes.Buffer
		if code := run([]string{"member", "-json", path}, &out, &errb); code != 0 {
			t.Fatalf("exit = %d, stderr = %q", code, errb.String())
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := runOnce(filepath.Join(dir, "a.json"))
	b := runOnce(filepath.Join(dir, "b.json"))
	if !bytes.Equal(a, b) {
		t.Fatal("BENCH_member.json is not byte-identical across runs")
	}
	var res struct {
		Rows []struct {
			P         int   `json:"p"`
			Rounds    int   `json:"rounds"`
			Bound     int   `json:"bound"`
			Bytes     int64 `json:"bytes"`
			PredBytes int64 `json:"pred_bytes"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatalf("BENCH JSON invalid: %v", err)
	}
	if len(res.Rows) != 8 { // P in {8,64,256,1024} x dead in {1,3}
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Rounds > r.Bound || r.Bytes != r.PredBytes {
			t.Fatalf("row violates its own invariants: %+v", r)
		}
	}
}
