// Command paretoexplore prints the full ordering design space of the
// analytic cost model (§IV / Table IV) for a given network shape: every
// 2^(2L) configuration's communication and sparse-operation cost, with
// the Pareto-optimal candidates marked.
//
// Example:
//
//	paretoexplore -dims 602,128,41 -p 8
//	paretoexplore -dims 128,256,256,40 -p 8 -ra 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gnnrdm/internal/costmodel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams and returns the exit
// code, so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paretoexplore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dimsFlag := fs.String("dims", "128,128,40", "layer widths f_0,...,f_L")
	p := fs.Int("p", 8, "device count")
	ra := fs.Int("ra", 0, "adjacency replication factor (0 = P, full replication)")
	n := fs.Int64("n", 1_000_000, "vertex count (scales communication)")
	nnz := fs.Int64("nnz", 20_000_000, "adjacency nonzeros (scales sparse ops)")
	noMemo := fs.Bool("nomemo", false, "disable forward-intermediate memoization (Table III N.M.)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var dims []int
	for _, s := range strings.Split(*dimsFlag, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || d < 1 {
			fmt.Fprintf(stderr, "paretoexplore: bad -dims entry %q\n", s)
			return 2
		}
		dims = append(dims, d)
	}
	if len(dims) < 2 {
		fmt.Fprintln(stderr, "paretoexplore: need at least 2 dims (one layer)")
		return 2
	}
	if *ra == 0 {
		*ra = *p
	}
	net := costmodel.Network{Dims: dims, N: *n, NNZ: *nnz, P: *p, RA: *ra, NoMemo: *noMemo}
	layers := net.Layers()
	costs := costmodel.EvaluateAll(net)
	pareto := map[int]bool{}
	for _, id := range costmodel.Pareto(costs) {
		pareto[id] = true
	}

	fmt.Fprintf(stdout, "Design space: L=%d layers, dims=%v, P=%d, RA=%d, N=%d, nnz=%d\n",
		layers, dims, *p, *ra, *n, *nnz)
	fmt.Fprintf(stdout, "Comm in units of (P-1)/P*N elements; sparse ops in units of nnz FMAs.\n\n")
	fmt.Fprintf(stdout, "%4s  %-24s %14s %14s %14s %14s  %s\n",
		"ID", "ordering", "comm(units)", "sparse(units)", "comm(MB)", "sparse(GFMA)", "pareto")
	for id, c := range costs {
		cfg := costmodel.ConfigFromID(id, layers)
		mark := ""
		if pareto[id] {
			mark = "  *"
		}
		fmt.Fprintf(stdout, "%4d  %-24s %14.1f %14.1f %14.1f %14.2f%s\n",
			id, cfg.String(), c.CommUnits, c.SparseUnits,
			float64(c.CommVolumeBytes())/(1<<20), c.SparseOps/1e9, mark)
	}
	fmt.Fprintf(stdout, "\nPareto-optimal candidates: %v\n", costmodel.Pareto(costs))
	return 0
}
