package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDesignSpace(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dims", "8,8,4", "-p", "4"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "Design space: L=2 layers") {
		t.Errorf("stdout missing header: %q", s)
	}
	if !strings.Contains(s, "Pareto-optimal candidates:") {
		t.Errorf("stdout missing pareto list: %q", s)
	}
	// 2 layers → 2^(2·2) = 16 orderings.
	if n := strings.Count(s, "fwd["); n != 16 {
		t.Errorf("listed %d orderings, want 16", n)
	}
}

func TestBadDims(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dims", "8,x,4"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bad -dims") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestTooFewDims(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dims", "8"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
