package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the -plan golden dumps")

func TestRecipeListing(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"Dataset recipes", "OGB-Arxiv", "Reddit"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	if strings.Contains(out.String(), "edge cuts") {
		t.Errorf("edge cuts printed without -cuts")
	}
}

func TestCuts(t *testing.T) {
	var out, errb bytes.Buffer
	// Scale must stay moderate: Build panics when scaling pushes a
	// recipe's vertex count below its label count.
	if code := run([]string{"-scale", "512", "-cuts"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "edge cuts") {
		t.Errorf("stdout missing edge-cut table: %q", out.String())
	}
}

// TestPlanGoldens pins the -plan schedule dumps for three orderings:
// all-SpMM-first (0), a mixed row (10), and all-GEMM-first (15). The
// dumps double as CI goldens (.github/workflows/ci.yml diffs them), so
// planner or pricing changes surface as reviewable diffs.
func TestPlanGoldens(t *testing.T) {
	for _, cfg := range []int{0, 10, 15} {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%02d", cfg), func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{"-plan", "-config", fmt.Sprint(cfg)}, &out, &errb); code != 0 {
				t.Fatalf("exit = %d, stderr = %q", code, errb.String())
			}
			path := filepath.Join("testdata", fmt.Sprintf("plan_cfg%02d.txt", cfg))
			if *updateGolden {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if out.String() != string(want) {
				t.Errorf("-plan dump differs from %s; rerun with -update if intended\n--- got\n%s--- want\n%s",
					path, out.String(), want)
			}
		})
	}
}

// TestPlanOverlapGolden pins the -plan -overlap dump for the shape
// where sequential and overlap pricing disagree on the best Table IV
// row (plan.TestChooseOrderingOverlapDisagrees pins the same pair): the
// checked-in golden shows sequential=config 10 but overlap=config 5 on
// the 8x4 reference machine, and doubles as a CI golden
// (.github/workflows/ci.yml diffs it).
func TestPlanOverlapGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-plan", "-overlap", "-config", "10", "-p", "4",
		"-n", "512", "-dims", "32,256,8", "-nnz", "65536"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"sequential=config 10", "overlap=config 5"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-overlap dump lost the argmin disagreement: missing %q in\n%s", want, out.String())
		}
	}
	path := filepath.Join("testdata", "plan_overlap.txt")
	if *updateGolden {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-plan -overlap dump differs from %s; rerun with -update if intended\n--- got\n%s--- want\n%s",
			path, out.String(), want)
	}
}

// TestPlanSparseGolden pins the -plan -density dump: the schedule
// compiles with the sparsity-aware exchange (two-round sparse redists,
// side-channel byte annotations) and the totals must reconcile against
// the sparse-adjusted Table IV closed form. The dump doubles as a CI
// golden (.github/workflows/ci.yml diffs it).
func TestPlanSparseGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-plan", "-config", "3", "-density", "0.25"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"density=0.25", "sparse exchange legs", "side="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-density dump missing %q in\n%s", want, out.String())
		}
	}
	path := filepath.Join("testdata", "plan_sparse.txt")
	if *updateGolden {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-plan -density dump differs from %s; rerun with -update if intended\n--- got\n%s--- want\n%s",
			path, out.String(), want)
	}
}

// TestPlanFlagValidation: malformed -plan inputs exit 2 without output.
func TestPlanFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-plan", "-dims", "16"},
		{"-plan", "-dims", "16,x,8"},
		{"-plan", "-config", "99"},
		{"-plan", "-p", "4", "-ra", "3"},
		{"-plan", "-overlap", "-spec", "8x4:warp,ib"},
		{"-plan", "-overlap", "-p", "64"},
		{"-plan", "-density", "0"},
		{"-plan", "-density", "1.5"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit = %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestTopoGolden pins the -topo dump for the issue's 8x4 reference
// machine. The dump doubles as a CI golden (.github/workflows/ci.yml
// diffs it), so topology-model or algorithm-cost changes surface as
// reviewable diffs.
func TestTopoGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-topo", "-spec", "8x4:nvlink,ib"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	path := filepath.Join("testdata", "topo_8x4.txt")
	if *updateGolden {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-topo dump differs from %s; rerun with -update if intended\n--- got\n%s--- want\n%s",
			path, out.String(), want)
	}
}

// TestTopoFlagValidation: malformed -topo inputs exit 2.
func TestTopoFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "-spec", "0x4:nvlink,ib"},
		{"-topo", "-spec", "8x4:warp,ib"},
		{"-topo", "-spec", "8x4:nvlink"},
		{"-topo", "-topo-p", "999"},
		{"-topo", "-bytes", "-1"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit = %d, want 2 (stderr %q)", args, code, errb.String())
		}
	}
}

// TestPlanSimGolden pins the -engine sim replay dump: the discrete-event
// backend re-executes the priced schedule and must reconcile every
// device clock against plan.PriceDAGEpochs before printing; the output
// doubles as a CI golden (.github/workflows/ci.yml diffs it).
func TestPlanSimGolden(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-plan", "-config", "10", "-engine", "sim"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "clocks == plan.PriceDAGEpochs bit-exact") {
		t.Errorf("sim dump missing the reconciliation line:\n%s", out.String())
	}
	path := filepath.Join("testdata", "plan_sim.txt")
	if *updateGolden {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("-engine sim dump differs from %s; rerun with -update if intended\n--- got\n%s--- want\n%s",
			path, out.String(), want)
	}
}

// TestEngineFlagValidation: an unknown backend name exits 2.
func TestEngineFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-plan", "-engine", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -engine") {
		t.Errorf("stderr = %q", errb.String())
	}
}
