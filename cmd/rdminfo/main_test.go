package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecipeListing(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	for _, want := range []string{"Dataset recipes", "OGB-Arxiv", "Reddit"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q", want)
		}
	}
	if strings.Contains(out.String(), "edge cuts") {
		t.Errorf("edge cuts printed without -cuts")
	}
}

func TestCuts(t *testing.T) {
	var out, errb bytes.Buffer
	// Scale must stay moderate: Build panics when scaling pushes a
	// recipe's vertex count below its label count.
	if code := run([]string{"-scale", "512", "-cuts"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "edge cuts") {
		t.Errorf("stdout missing edge-cut table: %q", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
