// Command rdminfo inspects the synthetic dataset recipes standing in for
// the paper's Table V datasets: it prints their characteristics at a
// chosen scale, the GCN normalization statistics, and the greedy
// partitioner's edge cut per device count (the quantity DGCL's
// communication is proportional to).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gnnrdm/internal/baselines"
	"gnnrdm/internal/graph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams and returns the exit
// code, so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdminfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 128, "dataset scale divisor (1 = the paper's full sizes)")
	cuts := fs.Bool("cuts", false, "also compute LDG partitioner edge cuts (builds each graph)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fmt.Fprintf(stdout, "Dataset recipes (Table V), scale=1/%d\n", *scale)
	fmt.Fprintf(stdout, "%-14s %10s %12s %9s %7s %9s %7s\n",
		"dataset", "vertices", "edges", "feat", "labels", "kind", "splits")
	for _, r := range graph.Recipes() {
		s := r.Scaled(*scale)
		fmt.Fprintf(stdout, "%-14s %10d %12d %9d %7d %9s %7v\n",
			s.Name, s.Vertices, s.Edges, s.FeatureDim, s.Labels, s.Kind, s.HasSplits)
	}

	if !*cuts {
		return 0
	}
	fmt.Fprintf(stdout, "\nLDG partitioner edge cuts (fraction of stored entries crossing parts)\n")
	fmt.Fprintf(stdout, "%-14s %10s %10s %10s %10s\n", "dataset", "nnz", "P=2", "P=4", "P=8")
	for _, r := range graph.Recipes() {
		g := r.Scaled(*scale).Build()
		nnz := g.NNZ()
		fmt.Fprintf(stdout, "%-14s %10d", r.Name, nnz)
		for _, p := range []int{2, 4, 8} {
			cut := baselines.EdgeCut(g.Adj, baselines.Partition(g.Adj, p))
			fmt.Fprintf(stdout, " %9.1f%%", 100*float64(cut)/float64(nnz))
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
