// Command rdminfo inspects the synthetic dataset recipes standing in for
// the paper's Table V datasets: it prints their characteristics at a
// chosen scale, the GCN normalization statistics, and the greedy
// partitioner's edge cut per device count (the quantity DGCL's
// communication is proportional to). With -plan it instead prints the
// compiled op schedule (internal/plan) for a chosen ordering, device
// count, and replication factor, with per-op priced fabric bytes and a
// totals line reconciled against the Table IV closed-form prediction;
// adding -overlap appends the schedule's dependency-DAG critical path
// against the sequential replay and the Table IV argmin under both
// pricers (which can disagree — see plan.ChooseOrderingOverlap).
// With -topo it instead prints an interconnect spec's link-tier
// structure and the topology-aware cost library's predicted collective
// times per algorithm (internal/topo).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gnnrdm/internal/baselines"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/hw"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sim"
	"gnnrdm/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI against explicit streams and returns the exit
// code, so tests can drive it end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rdminfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 128, "dataset scale divisor (1 = the paper's full sizes)")
	cuts := fs.Bool("cuts", false, "also compute LDG partitioner edge cuts (builds each graph)")
	planFlag := fs.Bool("plan", false, "print the compiled op schedule with per-op priced bytes")
	cfgID := fs.Int("config", 0, "Table IV ordering ID (with -plan)")
	devs := fs.Int("p", 4, "device count (with -plan)")
	ra := fs.Int("ra", 0, "adjacency replication factor, 0 = P (with -plan)")
	n := fs.Int("n", 64, "vertex count (with -plan)")
	dimsStr := fs.String("dims", "16,12,8", "comma-separated layer widths f_0..f_L (with -plan)")
	nnz := fs.Int64("nnz", 0, "stored adjacency entries, 0 = 8n (with -plan)")
	nomemo := fs.Bool("nomemo", false, "disable forward memoization (with -plan)")
	density := fs.Float64("density", 1, "live feature-row fraction; <1 compiles the sparsity-aware exchange (with -plan)")
	overlap := fs.Bool("overlap", false, "also print the dependency-DAG critical path and the overlap-vs-sequential ordering argmins (with -plan)")
	engine := fs.String("engine", "fabric", "execution backend for -plan: fabric prints the priced schedule only; sim also replays it on the discrete-event engine and reconciles clocks against plan.PriceDAGEpochs")
	topoFlag := fs.Bool("topo", false, "print an interconnect spec's link tiers and predicted collective times")
	specStr := fs.String("spec", "8x4:nvlink,ib", "interconnect spec <nodes>x<perNode>:<intra>[,<inter>] (with -topo)")
	topoP := fs.Int("topo-p", 0, "device count for -topo predictions, 0 = the spec's full size")
	payload := fs.Int64("bytes", 1<<22, "collective payload bytes for -topo predictions")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *topoFlag {
		return runTopo(stdout, stderr, *specStr, *topoP, *payload)
	}
	if *engine != "fabric" && *engine != "sim" {
		fmt.Fprintf(stderr, "rdminfo: unknown -engine %q (want fabric or sim)\n", *engine)
		return 2
	}
	if *planFlag {
		return runPlan(stdout, stderr, *cfgID, *devs, *ra, *n, *dimsStr, *nnz, *density, *nomemo, *overlap, *specStr, *engine)
	}

	fmt.Fprintf(stdout, "Dataset recipes (Table V), scale=1/%d\n", *scale)
	fmt.Fprintf(stdout, "%-14s %10s %12s %9s %7s %9s %7s\n",
		"dataset", "vertices", "edges", "feat", "labels", "kind", "splits")
	for _, r := range graph.Recipes() {
		s := r.Scaled(*scale)
		fmt.Fprintf(stdout, "%-14s %10d %12d %9d %7d %9s %7v\n",
			s.Name, s.Vertices, s.Edges, s.FeatureDim, s.Labels, s.Kind, s.HasSplits)
	}

	if !*cuts {
		return 0
	}
	fmt.Fprintf(stdout, "\nLDG partitioner edge cuts (fraction of stored entries crossing parts)\n")
	fmt.Fprintf(stdout, "%-14s %10s %10s %10s %10s\n", "dataset", "nnz", "P=2", "P=4", "P=8")
	for _, r := range graph.Recipes() {
		g := r.Scaled(*scale).Build()
		nnz := g.NNZ()
		fmt.Fprintf(stdout, "%-14s %10d", r.Name, nnz)
		for _, p := range []int{2, 4, 8} {
			cut := baselines.EdgeCut(g.Adj, baselines.Partition(g.Adj, p))
			fmt.Fprintf(stdout, " %9.1f%%", 100*float64(cut)/float64(nnz))
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// runPlan compiles, optimizes, and prices the op schedule for one
// problem shape, printing every op with its fabric byte volumes and a
// totals line checked byte-for-byte against the closed-form cost model.
// With overlap it appends the dependency-DAG critical path (flat and on
// the -spec topology) and the Table IV argmin under both pricers. Exit
// code 1 signals a planner/model disagreement, or a critical path
// exceeding the sequential replay.
func runPlan(stdout, stderr io.Writer, cfgID, p, ra, n int, dimsStr string, nnz int64, density float64, nomemo, overlap bool, specStr, engine string) int {
	dims, err := parseDims(dimsStr)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 2
	}
	layers := len(dims) - 1
	if cfgID < 0 || cfgID >= costmodel.NumConfigs(layers) {
		fmt.Fprintf(stderr, "rdminfo: config %d out of range for %d layers (0..%d)\n",
			cfgID, layers, costmodel.NumConfigs(layers)-1)
		return 2
	}
	if ra == 0 {
		ra = p
	}
	if p < 1 || ra < 1 || ra > p || p%ra != 0 {
		fmt.Fprintf(stderr, "rdminfo: RA=%d invalid for P=%d\n", ra, p)
		return 2
	}
	if nnz == 0 {
		nnz = int64(8 * n)
	}
	if density <= 0 || density > 1 {
		fmt.Fprintf(stderr, "rdminfo: -density %g out of range (0, 1]\n", density)
		return 2
	}
	live := 0
	if density < 1 {
		live = costmodel.LiveCount(n, density)
	}
	sp := plan.Spec{
		N: n, Dims: dims, Config: costmodel.ConfigFromID(cfgID, layers),
		P: p, RA: ra, Memoize: !nomemo, InputGrad: true,
		Live: live, SparseSeed: sparseSeed,
	}
	sched := plan.Compile(sp).Optimize()
	cost := sched.Price(nnz, hw.A6000())
	byStep := make(map[int]plan.OpCost, len(cost.PerOp))
	for _, oc := range cost.PerOp {
		byStep[oc.Step] = oc
	}
	header := fmt.Sprintf("compiled schedule: config=%d p=%d ra=%d n=%d dims=%s memoize=%d regs=%d ops=%d",
		cfgID, p, ra, n, dimsStr, b01(!nomemo), sched.NumRegs, sched.Ops())
	if sched.Live > 0 {
		header += fmt.Sprintf(" density=%g live=%d", density, sched.Live)
	}
	fmt.Fprintln(stdout, header)
	for i := range sched.Sections {
		sec := &sched.Sections[i]
		fmt.Fprintf(stdout, "section %s %d\n", sec.Phase, sec.Layer)
		for j := range sec.Ops {
			op := &sec.Ops[j]
			line := fmt.Sprintf("  s%-3d %s", op.Step, op.OpString())
			var ann []string
			oc := byStep[op.Step]
			if oc.AllToAll > 0 {
				ann = append(ann, fmt.Sprintf("alltoall=%dB", oc.AllToAll))
			}
			if oc.AllGather > 0 {
				ann = append(ann, fmt.Sprintf("allgather=%dB", oc.AllGather))
			}
			if oc.AllReduce > 0 {
				ann = append(ann, fmt.Sprintf("allreduce=%dB", oc.AllReduce))
			}
			if oc.Side > 0 {
				ann = append(ann, fmt.Sprintf("side=%dB", oc.Side))
			}
			if len(ann) > 0 {
				line = fmt.Sprintf("%-48s %s", line, strings.Join(ann, " "))
			}
			fmt.Fprintln(stdout, line)
		}
	}
	fmt.Fprintf(stdout, "totals: alltoall=%dB allgather=%dB rdm=%dB allreduce=%dB side=%dB\n",
		cost.AllToAll, cost.AllGather, cost.RDMBytes(), cost.AllReduce, cost.Side)
	net := costmodel.Network{Dims: dims, N: int64(n), NNZ: nnz, P: p, RA: ra, NoMemo: nomemo}
	want := costmodel.EvaluateEngine(net, sp.Config).CommVolumeBytes()
	if sched.Live > 0 {
		// The Table IV closed form prices dense tiles; swap the
		// sparse-eligible exchange legs for their data-dependent forms.
		exd, _, exp := sparseExchangeTotals(sched, p)
		want += exp - exd
		fmt.Fprintf(stdout, "model:  rdm=%dB (Table IV closed form, sparse exchange legs: dense %dB -> payload %dB)\n",
			want, exd, exp)
	} else {
		fmt.Fprintf(stdout, "model:  rdm=%dB (Table IV closed form)\n", want)
	}
	if got := cost.RDMBytes(); got != want {
		fmt.Fprintf(stderr, "rdminfo: schedule prices %d RDM bytes but model predicts %d (Δ=%d)\n",
			got, want, got-want)
		return 1
	}
	if engine == "sim" {
		if code := runPlanSim(stdout, stderr, sched, nnz); code != 0 {
			return code
		}
	}
	if !overlap {
		return 0
	}
	return runPlanOverlap(stdout, stderr, sp, sched, nnz, specStr)
}

// runPlanSim replays the compiled schedule on the discrete-event
// backend (-engine sim) for two epochs under both executors, printing
// the simulated clocks and meter census, and exits non-zero unless
// every device clock equals plan.PriceDAGEpochs bit-for-bit. The dump
// is deterministic and doubles as a CI golden (testdata/plan_sim.txt).
func runPlanSim(stdout, stderr io.Writer, sched *plan.Schedule, nnz int64) int {
	const epochs = 2
	dag, err := plan.BuildDAG(sched)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 1
	}
	h := hw.A6000()
	cen := sched.ApproxCensus(nnz)
	cost := dag.PriceDAGEpochs(cen, h, nil, epochs)
	for _, mode := range []struct {
		name    string
		overlap bool
		want    []float64
	}{{"sequential", false, cost.PerDeviceSeq}, {"overlap", true, cost.PerDevice}} {
		res := sim.MustRun(sim.Config{
			DAG: dag, Census: cen, HW: h, Epochs: epochs, Overlap: mode.overlap,
		})
		var comm, comp float64
		for r := range res.Clocks {
			if res.Clocks[r] != mode.want[r] {
				fmt.Fprintf(stderr, "rdminfo: sim %s clock[%d]=%.17g != plan.PriceDAGEpochs %.17g\n",
					mode.name, r, res.Clocks[r], mode.want[r])
				return 1
			}
			comm = maxf(comm, res.CommTime[r])
			comp = maxf(comp, res.ComputeTime[r])
		}
		if mode.overlap {
			fmt.Fprintf(stdout, "engine sim: %-10s epochs=%d clock=%.9fs\n",
				mode.name, epochs, res.MaxClock())
			continue
		}
		m := &res.Meters
		fmt.Fprintf(stdout, "engine sim: %-10s epochs=%d clock=%.9fs comm=%.9fs compute=%.9fs\n",
			mode.name, epochs, res.MaxClock(), comm, comp)
		fmt.Fprintf(stdout, "engine sim: meters alltoall=%dB allgather=%dB allreduce=%dB side=%dB total=%dB\n",
			m.Volume[hw.OpAllToAll], m.Volume[hw.OpAllGather], m.Volume[hw.OpAllReduce],
			m.TotalSideVolume(), m.TotalVolume())
	}
	fmt.Fprintln(stdout, "engine sim: clocks == plan.PriceDAGEpochs bit-exact (sequential + overlap)")
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// runPlanOverlap appends the -overlap section: DAG shape, critical path
// vs sequential replay on the flat fabric and on the -spec topology,
// and — pricer by pricer — which Table IV row each would pick. The dump
// is deterministic and doubles as a CI golden (testdata/plan_overlap.txt)
// pinning a shape where the two argmins disagree.
func runPlanOverlap(stdout, stderr io.Writer, sp plan.Spec, sched *plan.Schedule, nnz int64, specStr string) int {
	ts, err := topo.ParseSpec(specStr)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 2
	}
	tp, err := ts.Topology(sp.P)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 2
	}
	dag, err := plan.BuildDAG(sched)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 1
	}
	edges := 0
	for i := range dag.Nodes {
		edges += len(dag.Nodes[i].Deps)
	}
	h := hw.A6000()
	cen := sched.ApproxCensus(nnz)
	fmt.Fprintf(stdout, "overlap: dag nodes=%d edges=%d\n", len(dag.Nodes), edges)
	for _, row := range []struct {
		name string
		tp   *topo.Topology
	}{{"flat", nil}, {specStr, tp}} {
		c := dag.PriceDAGOn(cen, h, row.tp)
		fmt.Fprintf(stdout, "overlap: %-14s critical=%.9fs sequential=%.9fs efficiency=%.1f%%\n",
			row.name, c.Makespan, c.SeqTime, 100*c.Efficiency())
		if c.Makespan > c.SeqTime {
			fmt.Fprintf(stderr, "rdminfo: critical path %v exceeds sequential replay %v on %s\n",
				c.Makespan, c.SeqTime, row.name)
			return 1
		}
	}
	L := len(sp.Dims) - 1
	argminSeq, argminOvl := -1, -1
	var bestSeq, bestOvl float64
	for id := 0; id < costmodel.NumConfigs(L); id++ {
		s := sp
		s.Config = costmodel.ConfigFromID(id, L)
		cand := plan.Compile(s).Optimize()
		if t := cand.PriceOn(nnz, h, tp).Time; argminSeq < 0 || t < bestSeq {
			argminSeq, bestSeq = id, t
		}
		d, err := plan.BuildDAG(cand)
		if err != nil {
			fmt.Fprintf(stderr, "rdminfo: config %d: %v\n", id, err)
			return 1
		}
		if t := d.PriceDAGOn(cand.ApproxCensus(nnz), h, tp).Makespan; argminOvl < 0 || t < bestOvl {
			argminOvl, bestOvl = id, t
		}
	}
	fmt.Fprintf(stdout, "overlap argmin (Table IV, %s): sequential=config %d  overlap=config %d\n",
		specStr, argminSeq, argminOvl)
	return 0
}

// sparseSeed is the canonical live-set seed the CLI compiles with,
// matching the planner test suite's convention (dist.GenRows identity).
const sparseSeed = 3

// sparseExchangeTotals sums the closed-form dense, metadata, and payload
// bytes of the schedule's sparse-eligible redistributions.
func sparseExchangeTotals(sched *plan.Schedule, p int) (dense, meta, pay int64) {
	live := sched.LiveSet()
	for i := range sched.Sections {
		for j := range sched.Sections[i].Ops {
			op := &sched.Sections[i].Ops[j]
			if op.Kind != plan.KRedist || !op.Sparse ||
				!costmodel.SparseExchangeEligible(p, op.From, op.To) {
				continue
			}
			dense += costmodel.DenseExchangeBytes(p, op.Rows, op.Cols, op.From, op.To)
			m, pl := costmodel.SparseExchangeBytes(p, op.Rows, op.Cols, op.From, op.To, live)
			meta += m
			pay += pl
		}
	}
	return dense, meta, pay
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("-dims needs at least two comma-separated widths, got %q", s)
	}
	dims := make([]int, len(parts))
	for i, part := range parts {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("-dims entry %q is not a positive integer", part)
		}
		dims[i] = d
	}
	return dims, nil
}

func b01(v bool) int {
	if v {
		return 1
	}
	return 0
}
