package main

import (
	"fmt"
	"io"

	"gnnrdm/internal/hw"
	"gnnrdm/internal/topo"
)

// runTopo prints an interconnect spec's instantiated shape — the
// per-tier α–β table and the rank-pair link-tier matrix — followed by
// the predicted time and per-tier byte volume of every collective under
// every algorithm (internal/topo's cost library), with the autotuner's
// pick on its own row. The dump is deterministic and doubles as a CI
// golden (testdata/topo_8x4.txt).
func runTopo(stdout, stderr io.Writer, specStr string, p int, payload int64) int {
	sp, err := topo.ParseSpec(specStr)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 2
	}
	if p == 0 {
		p = sp.Devices()
	}
	tp, err := sp.Topology(p)
	if err != nil {
		fmt.Fprintf(stderr, "rdminfo: %v\n", err)
		return 2
	}
	if payload <= 0 {
		fmt.Fprintf(stderr, "rdminfo: -bytes must be positive, got %d\n", payload)
		return 2
	}
	h := hw.A6000()

	fmt.Fprintf(stdout, "topology %s: %d devices = %d nodes x %d/node (P=%d in use)\n",
		sp, sp.Devices(), sp.Nodes, sp.PerNode, p)
	fmt.Fprintf(stdout, "%-5s %-8s %-12s %s\n", "tier", "class", "alpha(s)", "beta(B/s)")
	fmt.Fprintf(stdout, "%-5d %-8s %-12g %g\n", topo.TierIntra, sp.Intra.Name, sp.Intra.Alpha, sp.Intra.Beta)
	if tp.Tiers > 1 {
		fmt.Fprintf(stdout, "%-5d %-8s %-12g %g\n", topo.TierInter, sp.Inter.Name, sp.Inter.Alpha, sp.Inter.Beta)
	}

	// Rank-pair tier matrix. Large worlds are truncated to the first
	// 2·PerNode ranks, enough to show both sides of a node boundary.
	shown := p
	if lim := 2 * sp.PerNode; shown > lim && lim >= 2 {
		shown = lim
	}
	fmt.Fprintf(stdout, "\nlink-tier matrix (ranks 0..%d%s; . = self)\n", shown-1, truncNote(shown, p))
	fmt.Fprintf(stdout, "    ")
	for j := 0; j < shown; j++ {
		fmt.Fprintf(stdout, "%2d", j)
	}
	fmt.Fprintln(stdout)
	for i := 0; i < shown; i++ {
		fmt.Fprintf(stdout, "%3d ", i)
		for j := 0; j < shown; j++ {
			if i == j {
				fmt.Fprintf(stdout, " .")
			} else {
				fmt.Fprintf(stdout, "%2d", tp.Tier(i, j))
			}
		}
		fmt.Fprintln(stdout)
	}

	world := make([]int, p)
	for i := range world {
		world[i] = i
	}
	chunks := topo.EvenChunks(payload, p)
	perPair := payload / int64(max(p-1, 1))
	pair := func(i, j int) int64 { return perPair }

	fmt.Fprintf(stdout, "\npredicted collective times, P=%d, payload %dB\n", p, payload)
	fmt.Fprintf(stdout, "%-14s %-10s %-14s %-12s %s\n", "collective", "algorithm", "time(s)", "intra(B)", "inter(B)")
	type row struct {
		name string
		cost func(alg topo.Algorithm) (topo.Algorithm, topo.Cost)
	}
	rows := []row{
		{"allreduce", func(a topo.Algorithm) (topo.Algorithm, topo.Cost) { return tp.AllReduce(h, a, world, payload) }},
		{"allgather", func(a topo.Algorithm) (topo.Algorithm, topo.Cost) { return tp.AllGather(h, a, world, chunks) }},
		{"reducescatter", func(a topo.Algorithm) (topo.Algorithm, topo.Cost) { return tp.ReduceScatter(h, a, world, chunks) }},
		{"alltoall", func(a topo.Algorithm) (topo.Algorithm, topo.Cost) { return tp.AllToAll(h, a, world, pair) }},
	}
	for _, r := range rows {
		for _, alg := range []topo.Algorithm{topo.Ring, topo.RHD, topo.Hier, topo.Auto} {
			got, c := r.cost(alg)
			label := alg.String()
			if alg == topo.Auto {
				label = "auto=" + got.String()
			} else if got != alg {
				// Inapplicable algorithm fell back (e.g. RHD on a
				// non-power-of-two world).
				label = alg.String() + "->" + got.String()
			}
			fmt.Fprintf(stdout, "%-14s %-10s %-14.9f %-12d %d\n",
				r.name, label, c.Time, c.Tier[topo.TierIntra], c.Tier[topo.TierInter])
		}
	}
	return 0
}

func truncNote(shown, p int) string {
	if shown < p {
		return fmt.Sprintf(" of %d", p)
	}
	return ""
}
