// Command gencorpus regenerates the checked-in seed corpora under each
// package's testdata/fuzz directory. Run from the repo root after
// changing a fuzzed binary format:
//
//	go run ./gencorpus
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gnnrdm/internal/core"
	"gnnrdm/internal/costmodel"
	"gnnrdm/internal/graph"
	"gnnrdm/internal/member"
	"gnnrdm/internal/plan"
	"gnnrdm/internal/sparse"
	"gnnrdm/internal/tensor"
)

func write(dir, name string, lines ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	content := "go test fuzz v1\n"
	for _, l := range lines {
		content += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

func bs(data []byte) string { return fmt.Sprintf("[]byte(%q)", data) }

func bytesArgs(vals ...byte) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprintf("byte(%q)", v)
	}
	return out
}

func main() {
	// internal/graph: edge-list text parser.
	el := "internal/graph/testdata/fuzz/FuzzReadEdgeList"
	write(el, "seed-path", `string("0 1\n1 2\n2 3\n3 4\n4 5\n")`, "int(8)")
	write(el, "seed-weighted", `string("0 1 0.25\n1 2 4\n2 0 1e-3\n")`, "int(4)")
	write(el, "seed-comments", `string("# planted\n% matrix\n3 3\n0 2\n\n2 1\n")`, "int(6)")
	write(el, "seed-dense-pair", `string("7 0\n0 7\n7 0\n")`, "int(9)")

	// internal/graph: binary CSR reader.
	adj := sparse.FromCoords(6, 6, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 0.5}, {Row: 2, Col: 1, Val: 0.5},
		{Row: 3, Col: 5, Val: 2}, {Row: 5, Col: 3, Val: 2},
		{Row: 4, Col: 4, Val: 1},
	})
	var csrBuf bytes.Buffer
	if err := graph.WriteCSR(&csrBuf, adj); err != nil {
		log.Fatal(err)
	}
	rc := "internal/graph/testdata/fuzz/FuzzReadCSR"
	write(rc, "seed-valid", bs(csrBuf.Bytes()))
	write(rc, "seed-truncated", bs(csrBuf.Bytes()[:csrBuf.Len()/2]))
	write(rc, "seed-header-only", bs(csrBuf.Bytes()[:minInt(16, csrBuf.Len())]))

	// internal/core: checkpoint reader. A structurally valid 2-layer
	// checkpoint plus a truncation of it.
	dims := []int{4, 3, 2}
	mk := func(r, c int, base float32) *tensor.Dense {
		m := tensor.NewDense(r, c)
		for i := range m.Data {
			m.Data[i] = base + float32(i)*0.125
		}
		return m
	}
	cp := &core.Checkpoint{
		Dims: dims, Step: 3,
		Weights: []*tensor.Dense{mk(4, 3, 0.5), mk(3, 2, -1)},
		AdamM:   []*tensor.Dense{mk(4, 3, 0), mk(3, 2, 0)},
		AdamV:   []*tensor.Dense{mk(4, 3, 0.01), mk(3, 2, 0.01)},
	}
	var cpBuf bytes.Buffer
	if err := cp.Write(&cpBuf); err != nil {
		log.Fatal(err)
	}
	ck := "internal/core/testdata/fuzz/FuzzReadCheckpoint"
	write(ck, "seed-valid", bs(cpBuf.Bytes()))
	write(ck, "seed-truncated", bs(cpBuf.Bytes()[:2*cpBuf.Len()/3]))
	// Classified v2 failure modes: a cut CRC trailer, bit rot past the
	// header (only the CRC catches it), and a foreign version word.
	write(ck, "seed-cut-trailer", bs(cpBuf.Bytes()[:cpBuf.Len()-4]))
	rot := append([]byte(nil), cpBuf.Bytes()...)
	rot[len(rot)/2] ^= 0x10
	write(ck, "seed-bitrot", bs(rot))
	ver := append([]byte(nil), cpBuf.Bytes()...)
	ver[8] = 99
	write(ck, "seed-badversion", bs(ver))

	// internal/fault: -faults schedule grammar parser.
	fz := "internal/fault/testdata/fuzz/FuzzFaultSchedule"
	write(fz, "seed-crash-epoch", `string("crash@rank2:epoch3")`)
	write(fz, "seed-crash-time", `string("crash@rank5:t0.25")`)
	write(fz, "seed-slow", `string("slow@rank0:1.5x")`)
	write(fz, "seed-degrade", `string("degrade@rank1:alpha2:beta4")`)
	write(fz, "seed-flip", `string("flip@rank3:epoch1")`)
	write(fz, "seed-drop-n", `string("drop@rank0:epoch2:n2")`)
	write(fz, "seed-multi", `string("crash@rank0:t1e-3,degrade@rank2:alpha1.5:beta3,drop@rank1:epoch0")`)
	write(fz, "seed-simultaneous", `string("crash@rank1:epoch2,crash@rank3:epoch2,crash@rank5:epoch2,crash@rank7:epoch2")`)
	write(fz, "seed-spaces", `string(" crash@rank2:epoch3 , flip@rank0:epoch0 ")`)
	write(fz, "seed-bad-verb", `string("boom@rank0:epoch1")`)
	write(fz, "seed-partition", `string("partition@0+1|2+3:epoch2")`)
	write(fz, "seed-partition-lopsided", `string("partition@0|1+2+3+4+5+6+7:epoch1")`)
	write(fz, "seed-partition-noncanonical", `string("partition@3+1|0+2:epoch4")`)
	write(fz, "seed-partition-mixed", `string("crash@rank5:epoch3,partition@0+1|2+3:epoch1")`)
	write(fz, "seed-partition-overlap", `string("partition@0+1|1+2:epoch1")`)
	write(fz, "seed-partition-empty-side", `string("partition@|0+1:epoch1")`)
	write(fz, "seed-partition-missing-bar", `string("partition@0+1+2+3:epoch1")`)

	// internal/member: gossip wire format (strict Encode/Decode round
	// trip). Well-formed frames of each message type plus the classified
	// rejects: truncation, trailing garbage, and a count/payload mismatch.
	mm := "internal/member/testdata/fuzz/FuzzMemberMsg"
	ping := member.Msg{Type: member.MsgPing, From: 2, To: 5, Seq: 9, Updates: []member.Update{
		{Rank: 3, State: member.Suspect, Inc: 1},
		{Rank: 7, State: member.Dead, Inc: 0},
	}}
	ack := member.Msg{Type: member.MsgAck, From: 5, To: 2, Seq: 9, Updates: []member.Update{
		{Rank: 5, State: member.Alive, Inc: 2},
	}}
	pingReq := member.Msg{Type: member.MsgPingReq, From: 0, To: 4, Seq: 17, Target: 6}
	write(mm, "seed-ping", bs(ping.Encode()))
	write(mm, "seed-ack", bs(ack.Encode()))
	write(mm, "seed-ping-req", bs(pingReq.Encode()))
	enc := ping.Encode()
	write(mm, "seed-truncated", bs(enc[:len(enc)-3]))
	write(mm, "seed-trailing", bs(append(append([]byte(nil), enc...), 0)))
	bad := append([]byte(nil), enc...)
	bad[0] = 9 // no such message type
	write(mm, "seed-bad-type", bs(bad))

	// internal/sparse: COO→CSR construction.
	fc := "internal/sparse/testdata/fuzz/FuzzFromCoords"
	write(fc, "seed-duplicates", bs([]byte{8, 8, 3, 5, 10, 3, 5, 246, 3, 5, 1, 0, 0, 128}))
	write(fc, "seed-single-cell", bs([]byte{1, 1, 0, 0, 1, 0, 0, 2, 0, 0, 3}))
	write(fc, "seed-empty-rows", bs([]byte{24, 24, 23, 23, 7}))
	write(fc, "seed-cancellation", bs([]byte{4, 4, 2, 2, 5, 2, 2, 251}))

	// internal/plan: schedule dump grammar (Parse/String fixed point).
	sched := func(sp plan.Spec, optimize bool) string {
		s := plan.Compile(sp)
		if optimize {
			s = s.Optimize()
		}
		return fmt.Sprintf("string(%q)", s.String())
	}
	pl := "internal/plan/testdata/fuzz/FuzzPlanString"
	write(pl, "seed-header-only",
		`string("schedule p=1 ra=1 n=4 dims=3,2 config=0 sage=0 memoize=0 inputgrad=0 regs=0 weights=1\n")`)
	write(pl, "seed-cfg0-opt", sched(plan.Spec{
		N: 64, Dims: []int{16, 12, 8}, Config: costmodel.ConfigFromID(0, 2),
		P: 4, RA: 4, Memoize: true, InputGrad: true,
	}, true))
	write(pl, "seed-cfg15-grid", sched(plan.Spec{
		N: 64, Dims: []int{16, 12, 8}, Config: costmodel.ConfigFromID(15, 2),
		P: 8, RA: 2, InputGrad: true,
	}, true))
	write(pl, "seed-sage-naive", sched(plan.Spec{
		N: 7, Dims: []int{5, 4, 3, 2}, P: 2, RA: 2, SAGE: true, Memoize: true,
	}, false))
	// DAG-bearing seeds: reduced replication (colGroup resources), a
	// SAGE+grid mix, and a full DAG dump so mutations explore ParseDAG's
	// edges grammar (the fuzz body round-trips any dump it accepts).
	write(pl, "seed-cfg6-ra2", sched(plan.Spec{
		N: 48, Dims: []int{16, 12, 8}, Config: costmodel.ConfigFromID(6, 2),
		P: 8, RA: 2, Memoize: true, InputGrad: true,
	}, true))
	write(pl, "seed-sage-grid", sched(plan.Spec{
		N: 32, Dims: []int{8, 6, 4}, Config: costmodel.ConfigFromID(9, 2),
		P: 4, RA: 2, SAGE: true, Memoize: true, InputGrad: true,
	}, true))
	dagDump := plan.MustBuildDAG(plan.Compile(plan.Spec{
		N: 64, Dims: []int{16, 12, 8}, Config: costmodel.ConfigFromID(10, 2),
		P: 4, RA: 4, Memoize: true, InputGrad: true,
	}).Optimize()).String()
	write(pl, "seed-dag-dump", fmt.Sprintf("string(%q)", dagDump))

	// internal/dist: divide/exchange/merge redistribution.
	rg := "internal/dist/testdata/fuzz/FuzzRegrid"
	write(rg, "seed-ragged-p3", bytesArgs(7, 5, 2, 0, 1)...)
	write(rg, "seed-grid-p4", bytesArgs(12, 4, 3, 2, 0)...)
	write(rg, "seed-single-device", bytesArgs(1, 1, 0, 0, 0)...)
	write(rg, "seed-wide", bytesArgs(3, 9, 1, 1, 0)...)

	// internal/dist: two-round sparse row-set redistribution
	// (codec round-trip + sparse-vs-dense differential). Args:
	// rows, cols, pSel, srcSel, dstSel, liveCount, seed.
	sx := "internal/dist/testdata/fuzz/FuzzSparseExchange"
	write(sx, "seed-quarter-live", bytesArgs(12, 5, 2, 0, 1, 4, 3)...)
	write(sx, "seed-tall-p4", bytesArgs(24, 3, 3, 1, 0, 6, 9)...)
	write(sx, "seed-grid-dst", bytesArgs(8, 4, 1, 2, 0, 2, 1)...)
	write(sx, "seed-single-device", bytesArgs(1, 1, 0, 0, 0, 0, 0)...)
	write(sx, "seed-all-live", bytesArgs(16, 6, 3, 0, 1, 16, 5)...)
	write(sx, "seed-empty-live", bytesArgs(10, 2, 1, 0, 1, 0, 7)...)

	// internal/topo: interconnect spec grammar (parse/String fixed
	// point). Valid specs across the class table plus malformed shapes
	// the parser must reject.
	ts := "internal/topo/testdata/fuzz/FuzzTopoSpec"
	write(ts, "seed-reference", `string("8x4:nvlink,ib")`)
	write(ts, "seed-single-node", `string("1x8:pcie")`)
	write(ts, "seed-ethernet", `string("2x2:nvlink,eth")`)
	write(ts, "seed-one-per-node", `string("16x1:pcie3,ib")`)
	write(ts, "seed-degenerate", `string("1x1:eth")`)
	write(ts, "seed-missing-inter", `string("8x4:nvlink")`)
	write(ts, "seed-zero-nodes", `string("0x0:nvlink,ib")`)
	write(ts, "seed-punctuation", `string(":,")`)
	write(ts, "seed-non-numeric", `string("axb:c,d")`)

	// internal/serve: traffic-spec grammar (parse/String fixed point).
	// Valid specs across the parameter ranges plus malformed shapes the
	// parser must reject.
	tf := "internal/serve/testdata/fuzz/FuzzTrafficSpec"
	write(tf, "seed-default", `string("traffic q=512 users=1000000 zipf=1.5 rate=2000 seed=7")`)
	write(tf, "seed-minimal", `string("traffic q=0 users=1 zipf=1.001 rate=0.5 seed=-1")`)
	write(tf, "seed-extremes", `string("traffic q=1 users=1099511627776 zipf=64 rate=1e12 seed=0")`)
	write(tf, "seed-scientific", `string("traffic q=64 users=3000000 zipf=2 rate=1e6 seed=42")`)
	write(tf, "seed-bad-skew", `string("traffic q=8 users=10 zipf=1 rate=100 seed=3")`)
	write(tf, "seed-missing-field", `string("traffic q=8 users=10 zipf=1.5")`)
	write(tf, "seed-garbage", `string("traffic q=x users=y zipf=z rate=w seed=v")`)

	// internal/bench: the rdmbench scale sweep grammar
	// (P[@topoSpec|@flat], ";"-separated).
	sc := "internal/bench/testdata/fuzz/FuzzScaleSpec"
	write(sc, "seed-default", `string("256;1024;4096")`)
	write(sc, "seed-explicit", `string("8@flat;32@4x8:nvlink,ib")`)
	write(sc, "seed-spaces", `string(" 16 ; 16@2x8:nvlink,eth ")`)
	write(sc, "seed-max", `string("65536")`)
	write(sc, "seed-too-small-topo", `string("16@1x8:nvlink,ib")`)
	write(sc, "seed-garbage", `string("0;;@;x@y")`)

	fmt.Println("corpora written")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
